"""Content-addressed on-disk trace cache.

A ``(program, scale, seed, n_procs)`` trace is deterministic and
immutable, so -- exactly like a simulation result in
:class:`repro.runner.cache.ResultCache` -- it is worth generating once,
ever.  The paper's own pipeline has this shape: MPTrace tapes are
collected offline and then consumed by every machine/lock/consistency
configuration.

Layout (git-style fan-out, sibling of the result cache)::

    <root>/<key[:2]>/<key>.npy     # all processors' records, concatenated
    <root>/<key[:2]>/<key>.json    # sidecar: formats, key, per-proc counts,
                                   # address-layout + traceset metadata

The records live in a plain ``.npy`` file -- not the ``.npz`` archive of
:mod:`repro.trace.encode` -- because ``np.load(..., mmap_mode="r")``
cannot memory-map members of a zip archive.  With a flat ``.npy``, every
pool worker that loads the same cached trace shares the same physical
pages instead of each holding a private copy.

The cache key is the SHA-256 of the canonical JSON of the generation
parameters *plus both format versions* (the encode-layer
:data:`~repro.trace.encode.FORMAT_VERSION` and this module's
:data:`TRACE_CACHE_FORMAT`), so bumping either version orphans old
objects rather than reinterpreting them.  Objects whose sidecar carries
a different version (or is corrupt, truncated, or mismatched with its
address) are *invalidated* -- counted, deleted, treated as a miss --
never trusted and never raised to the caller.

Writes are atomic and ordered: the ``.npy`` is published first, the
sidecar last, so a reader that finds a sidecar always finds the data it
describes; a crash between the two leaves an orphan ``.npy`` that the
next ``put`` simply overwrites.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .encode import FORMAT_VERSION
from .layout import AddressLayout
from .records import RECORD_DTYPE, Trace, TraceSet

__all__ = [
    "TRACE_CACHE_FORMAT",
    "TraceCacheStats",
    "TraceCache",
    "default_trace_cache_dir",
    "resolve_trace_cache",
    "trace_key",
]

#: bump to invalidate every previously cached trace object (e.g. after a
#: change to the on-disk layout of this module's objects)
TRACE_CACHE_FORMAT = 1

_FALSY = frozenset({"", "0", "off", "no", "false"})
_TRUTHY = frozenset({"1", "on", "yes", "true"})


def default_trace_cache_dir() -> Path:
    """``$REPRO_TRACE_CACHE_DIR`` if set, else ``<result cache>/traces``."""
    env = os.environ.get("REPRO_TRACE_CACHE_DIR")
    if env:
        return Path(env)
    base = os.environ.get("REPRO_CACHE_DIR")
    if base:
        return Path(base) / "traces"
    xdg = os.environ.get("XDG_CACHE_HOME")
    root = Path(xdg) if xdg else Path.home() / ".cache"
    return root / "repro" / "traces"


def trace_key(
    program: str,
    scale: float = 1.0,
    seed: int = 1991,
    n_procs: int | None = None,
) -> str:
    """Stable content address for one generated traceset.

    Both format versions are part of the preimage: a trace encoded under
    an older layout can never satisfy a lookup from a newer one.
    """
    canon = json.dumps(
        {
            "cache_format": TRACE_CACHE_FORMAT,
            "encode_format": FORMAT_VERSION,
            "program": program,
            "scale": scale,
            "seed": seed,
            "n_procs": n_procs,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(canon.encode()).hexdigest()


@dataclass
class TraceCacheStats:
    """Hit/miss/invalidation accounting for one cache handle."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    invalidated: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def summary(self) -> str:
        return (
            f"{self.hits} hits, {self.misses} misses "
            f"({100 * self.hit_rate:.0f}% hit rate), {self.puts} stored, "
            f"{self.invalidated} invalidated"
        )


class TraceCache:
    """Content-addressed store of generated :class:`TraceSet`s.

    ``mmap_mode`` controls how cached record arrays are loaded;
    the default ``"r"`` maps them read-only so concurrent processes
    share pages.  Pass ``mmap_mode=None`` to read private in-memory
    copies instead.
    """

    def __init__(
        self,
        root: str | os.PathLike | None = None,
        mmap_mode: str | None = "r",
    ) -> None:
        self.root = Path(root) if root is not None else default_trace_cache_dir()
        self.mmap_mode = mmap_mode
        self.stats = TraceCacheStats()

    # ------------------------------------------------------------------
    def data_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.npy"

    def meta_path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def _discard(self, key: str) -> None:
        for path in (self.meta_path(key), self.data_path(key)):
            try:
                path.unlink()
            except OSError:
                pass

    def _invalidate(self, key: str) -> None:
        self.stats.invalidated += 1
        self.stats.misses += 1
        self._discard(key)

    # ------------------------------------------------------------------
    def get(
        self,
        program: str,
        scale: float = 1.0,
        seed: int = 1991,
        n_procs: int | None = None,
    ) -> TraceSet | None:
        """The cached traceset, or ``None`` on a miss.

        Corrupt, truncated, or format-stale objects (including version
        mismatches from an older or newer writer) are deleted and
        counted in ``stats.invalidated`` -- never raised.
        """
        key = trace_key(program, scale, seed, n_procs)
        try:
            meta = json.loads(self.meta_path(key).read_text())
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except Exception:
            self._invalidate(key)
            return None
        try:
            ts = self._load(key, meta, program)
        except Exception:
            self._invalidate(key)
            return None
        self.stats.hits += 1
        return ts

    def _load(self, key: str, meta: dict, program: str) -> TraceSet:
        if (
            meta["cache_format"] != TRACE_CACHE_FORMAT
            or meta["encode_format"] != FORMAT_VERSION
        ):
            raise ValueError("trace object written under a different format version")
        if meta["key"] != key or meta["program"] != program:
            raise ValueError("stale or mismatched trace object")
        counts = [int(c) for c in meta["counts"]]
        if len(counts) != meta["n_procs"]:
            raise ValueError("per-processor counts do not match n_procs")
        records = np.load(self.data_path(key), mmap_mode=self.mmap_mode)
        if records.dtype != RECORD_DTYPE:
            raise ValueError(f"unexpected record dtype {records.dtype}")
        if len(records) != sum(counts):
            raise ValueError("record data truncated")
        traces = []
        start = 0
        for proc, count in enumerate(counts):
            traces.append(
                Trace(records[start : start + count], proc=proc, program=program)
            )
            start += count
        layout = AddressLayout.from_dict(meta["layout"])
        return TraceSet(traces, layout, program=program, meta=meta["meta"])

    def has_key(self, key: str) -> bool:
        """Cheap existence probe (peer ``has`` ops): a committed sidecar
        implies its data file exists (data is published first)."""
        return self.meta_path(key).exists()

    def get_bytes(self, key: str) -> tuple[bytes, bytes] | None:
        """Raw ``(sidecar, data)`` bytes for replication, or ``None``.

        This is the store tier's bulk read: the object travels to a peer
        exactly as it sits on disk (the ``.npy`` is already a compact
        binary array), and the receiving :meth:`put_bytes` re-validates
        before committing.  Unreadable or mismatched objects are
        invalidated like any other failed load.
        """
        try:
            meta_bytes = self.meta_path(key).read_bytes()
            meta = json.loads(meta_bytes)
            if (
                meta["cache_format"] != TRACE_CACHE_FORMAT
                or meta["encode_format"] != FORMAT_VERSION
                or meta["key"] != key
            ):
                raise ValueError("stale or mismatched trace object")
            data_bytes = self.data_path(key).read_bytes()
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except Exception:
            self._invalidate(key)
            return None
        self.stats.hits += 1
        return meta_bytes, data_bytes

    def put_bytes(self, key: str, meta_bytes: bytes, data_bytes: bytes) -> str:
        """Commit a replicated object fetched from a peer.

        The sidecar is parsed and checked against ``key`` and both
        format versions before anything touches disk -- a peer can be
        stale or corrupt, never this store.
        """
        meta = json.loads(meta_bytes)
        if (
            meta.get("cache_format") != TRACE_CACHE_FORMAT
            or meta.get("encode_format") != FORMAT_VERSION
            or meta.get("key") != key
        ):
            raise ValueError(f"replicated trace object does not match key {key!r}")
        directory = self.data_path(key).parent
        directory.mkdir(parents=True, exist_ok=True)
        # same commit order as put(): data first, sidecar last
        self._write_atomic(
            self.data_path(key), lambda fh: fh.write(data_bytes), "wb"
        )
        self._write_atomic(
            self.meta_path(key), lambda fh: fh.write(meta_bytes), "wb"
        )
        self.stats.puts += 1
        return key

    # ------------------------------------------------------------------
    def put(
        self,
        ts: TraceSet,
        scale: float = 1.0,
        seed: int = 1991,
        n_procs: int | None = None,
    ) -> str:
        """Store ``ts`` under its generation parameters; returns the key.

        The caller asserts that ``ts`` *is* the canonical trace for
        ``(ts.program, scale, seed, n_procs)`` -- the same contract as
        attaching a pre-generated traceset to a provenance-named
        :class:`~repro.runner.spec.JobSpec`.
        """
        key = trace_key(ts.program, scale, seed, n_procs)
        traces = sorted(ts.traces, key=lambda t: t.proc)
        if traces:
            records = np.concatenate([t.records for t in traces])
        else:
            records = np.empty(0, dtype=RECORD_DTYPE)
        meta = {
            "cache_format": TRACE_CACHE_FORMAT,
            "encode_format": FORMAT_VERSION,
            "key": key,
            "program": ts.program,
            "n_procs": ts.n_procs,
            "counts": [len(t.records) for t in traces],
            "layout": ts.layout.to_dict(),
            "meta": ts.meta,
        }
        directory = self.data_path(key).parent
        directory.mkdir(parents=True, exist_ok=True)
        # data first, sidecar (the commit point) last, both atomically
        self._write_atomic(
            self.data_path(key), lambda fh: np.save(fh, records), "wb"
        )
        self._write_atomic(
            self.meta_path(key), lambda fh: json.dump(meta, fh, sort_keys=True), "w"
        )
        self.stats.puts += 1
        return key

    def _write_atomic(self, path: Path, write, mode: str) -> None:
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, mode) as fh:
                write(fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    def _object_files(self) -> list[Path]:
        if not self.root.is_dir():
            return []
        return sorted(p for ext in ("json", "npy") for p in self.root.glob(f"*/*.{ext}"))

    def count(self) -> int:
        """Number of cached tracesets (committed sidecars)."""
        return sum(1 for p in self._object_files() if p.suffix == ".json")

    def size_bytes(self) -> int:
        return sum(p.stat().st_size for p in self._object_files())

    def clear(self, older_than_days: float | None = None) -> int:
        """Delete cached traces; returns how many tracesets were removed.

        ``older_than_days`` garbage-collects only objects whose sidecar
        mtime is older than that many days (the sidecar is the commit
        point, so its age is the object's age); orphan data files past
        the cutoff go too.
        """
        files = self._object_files()
        if older_than_days is not None:
            import time

            cutoff = time.time() - float(older_than_days) * 86400.0
            sidecars = {p.with_suffix("") for p in files if p.suffix == ".json"}
            old = []
            for p in files:
                if p.suffix == ".npy" and p.with_suffix("") in sidecars:
                    continue  # paired data goes when its sidecar does
                try:
                    if p.stat().st_mtime >= cutoff:
                        continue
                except OSError:
                    continue
                old.append(p)
                if p.suffix == ".json":
                    old.append(p.with_suffix(".npy"))
            files = old
        n = sum(1 for p in files if p.suffix == ".json")
        for p in files:
            try:
                p.unlink()
            except OSError:
                pass
        for d in sorted(self.root.glob("*")):
            try:
                d.rmdir()
            except OSError:
                pass
        return n

    def describe(self) -> str:
        """Multi-line human-readable report (``repro trace stats``)."""
        return (
            f"trace cache directory : {self.root}\n"
            f"cached tracesets      : {self.count()}\n"
            f"total size            : {self.size_bytes() / (1024 * 1024):.1f} MiB\n"
            f"this session          : {self.stats.summary()}"
        )

    def stats_dict(self) -> dict:
        """JSON-ready report (``repro trace stats --json``, the service
        ``/status`` endpoint, worker ``stats`` ops)."""
        return {
            "root": str(self.root),
            "count": self.count(),
            "size_bytes": self.size_bytes(),
            "session": {
                "hits": self.stats.hits,
                "misses": self.stats.misses,
                "puts": self.stats.puts,
                "invalidated": self.stats.invalidated,
                "hit_rate": round(self.stats.hit_rate, 4),
            },
        }


def resolve_trace_cache(value=None) -> TraceCache | None:
    """Normalize a trace-cache argument to a handle (or ``None``).

    * ``None`` -- consult ``$REPRO_TRACE_CACHE``: unset or falsy
      (``0/off/no/false``) disables the cache, truthy (``1/on/yes/true``)
      enables it at the default directory, anything else is a directory;
    * ``True``/``False`` -- the default cache / disabled, regardless of
      the environment;
    * a path -- a cache rooted there;
    * a :class:`TraceCache` -- returned as-is.
    """
    if isinstance(value, TraceCache):
        return value
    if value is None:
        env = os.environ.get("REPRO_TRACE_CACHE")
        if env is None or env.strip().lower() in _FALSY:
            return None
        if env.strip().lower() in _TRUTHY:
            return TraceCache()
        return TraceCache(env)
    if value is False:
        return None
    if value is True:
        return TraceCache()
    return TraceCache(value)
