"""Address-space layout of a traced program.

The paper classifies references as instruction fetches, private data and
shared data (Table 1), and the machine model treats lock words as
ordinary cacheable shared memory.  We give every trace an explicit
layout so that classification is a pure function of the address:

* ``[CODE_BASE, CODE_BASE + code_size)`` -- program text (ifetch only).
* ``[SHARED_BASE, ...)`` -- the shared heap.  In the Presto programs
  nearly all data lands here ("Due to the allocation scheme used in
  Presto most data is allocated as shared even when it need not be").
* ``[LOCK_BASE, ...)`` -- lock words, one cache line apart so that lock
  traffic never false-shares with data or with other locks.
* ``[PRIVATE_BASE + p * PRIVATE_SPAN, ...)`` -- processor ``p``'s private
  stack and heap.

All regions are disjoint by construction and aligned to cache lines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["AddressLayout", "LINE_SIZE"]

#: Cache line size used throughout (16 bytes; §2.2 of the paper).
LINE_SIZE = 16

CODE_BASE = 0x0000_1000
SHARED_BASE = 0x1000_0000
LOCK_BASE = 0x2000_0000
PRIVATE_BASE = 0x8000_0000
PRIVATE_SPAN = 0x0100_0000  # 16 MiB of private space per processor


@dataclass
class AddressLayout:
    """Allocator + classifier for trace addresses.

    The allocation methods are bump allocators; they exist so workload
    models can carve out arrays/structs without tracking addresses by
    hand, and so tests can assert region disjointness.
    """

    n_procs: int
    _shared_brk: int = field(default=SHARED_BASE, repr=False)
    _code_brk: int = field(default=CODE_BASE, repr=False)
    _lock_brk: int = field(default=LOCK_BASE, repr=False)
    _private_brk: list = field(default=None, repr=False)
    #: human-readable names for allocated lock ids (filled by SharedLock)
    lock_names: dict = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.n_procs < 1:
            raise ValueError("n_procs must be >= 1")
        if self._private_brk is None:
            self._private_brk = [
                PRIVATE_BASE + p * PRIVATE_SPAN for p in range(self.n_procs)
            ]

    # -- allocation --------------------------------------------------------
    @staticmethod
    def _align(addr: int, align: int) -> int:
        return (addr + align - 1) & ~(align - 1)

    def alloc_shared(self, nbytes: int, align: int = LINE_SIZE) -> int:
        """Allocate ``nbytes`` of shared heap; returns the base address."""
        base = self._align(self._shared_brk, align)
        self._shared_brk = base + nbytes
        if self._shared_brk > LOCK_BASE:
            raise MemoryError("shared region overflow")
        return base

    def alloc_private(self, proc: int, nbytes: int, align: int = LINE_SIZE) -> int:
        """Allocate ``nbytes`` in processor ``proc``'s private region."""
        base = self._align(self._private_brk[proc], align)
        self._private_brk[proc] = base + nbytes
        if self._private_brk[proc] > PRIVATE_BASE + (proc + 1) * PRIVATE_SPAN:
            raise MemoryError(f"private region overflow for proc {proc}")
        return base

    def alloc_code(self, nbytes: int, align: int = LINE_SIZE) -> int:
        """Allocate a stretch of program text (for basic-block addresses)."""
        base = self._align(self._code_brk, align)
        self._code_brk = base + nbytes
        if self._code_brk > SHARED_BASE:
            raise MemoryError("code region overflow")
        return base

    def alloc_lock(self) -> int:
        """Allocate a lock word on its own cache line."""
        base = self._lock_brk
        self._lock_brk += LINE_SIZE
        if self._lock_brk > PRIVATE_BASE:
            raise MemoryError("lock region overflow")
        return base

    # -- classification ----------------------------------------------------
    @staticmethod
    def is_shared(addr: int) -> bool:
        """True if ``addr`` is shared data (heap or lock word)."""
        return SHARED_BASE <= addr < PRIVATE_BASE

    @staticmethod
    def is_lock_addr(addr: int) -> bool:
        return LOCK_BASE <= addr < PRIVATE_BASE

    @staticmethod
    def is_private(addr: int) -> bool:
        return addr >= PRIVATE_BASE

    @staticmethod
    def is_code(addr: int) -> bool:
        return CODE_BASE <= addr < SHARED_BASE

    def owner_of_private(self, addr: int) -> int:
        """Which processor's region a private address belongs to."""
        if not self.is_private(addr):
            raise ValueError(f"{addr:#x} is not a private address")
        return (addr - PRIVATE_BASE) // PRIVATE_SPAN

    # -- (de)serialisation ---------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "n_procs": self.n_procs,
            "shared_brk": self._shared_brk,
            "code_brk": self._code_brk,
            "lock_brk": self._lock_brk,
            "private_brk": list(self._private_brk),
            "lock_names": {str(k): v for k, v in self.lock_names.items()},
        }

    @classmethod
    def from_dict(cls, d: dict) -> "AddressLayout":
        layout = cls(n_procs=d["n_procs"])
        layout._shared_brk = d["shared_brk"]
        layout._code_brk = d["code_brk"]
        layout._lock_brk = d["lock_brk"]
        layout._private_brk = list(d["private_brk"])
        # canonicalize to allocation (ascending-id) order regardless of the
        # serializer's key order: some writers sort keys lexicographically,
        # and re-encoding must stay byte-stable
        layout.lock_names = {
            int(k): v
            for k, v in sorted(
                d.get("lock_names", {}).items(), key=lambda kv: int(kv[0])
            )
        }
        return layout
