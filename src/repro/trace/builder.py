"""Incremental construction of per-processor traces.

Workload models drive one :class:`TraceBuilder` per logical processor.
The builder enforces the structural invariants MPTrace post-processing
guarantees (properly nested lock/unlock pairs per processor, addresses in
known regions) at build time, so that downstream consumers never have to
re-check them.
"""

from __future__ import annotations

import numpy as np

from .layout import AddressLayout
from .records import (
    BARRIER,
    IBLOCK,
    LOCK,
    READ,
    RECORD_DTYPE,
    UNLOCK,
    WRITE,
    Trace,
)

__all__ = ["TraceBuilder", "TraceBuildError"]


class TraceBuildError(ValueError):
    """A workload emitted a structurally invalid record sequence."""


class TraceBuilder:
    """Append-only builder for one processor's trace.

    Parameters
    ----------
    proc:
        Processor index.
    layout:
        The shared :class:`AddressLayout` (used for address sanity checks
        and to look up lock-word addresses).
    program:
        Program name stamped onto the resulting :class:`Trace`.
    check:
        When True (the default), validate every record as it is emitted.
        Generation-heavy callers may disable this and rely on
        :mod:`repro.trace.validate` instead.
    """

    def __init__(
        self,
        proc: int,
        layout: AddressLayout,
        program: str = "",
        check: bool = True,
    ) -> None:
        self.proc = proc
        self.layout = layout
        self.program = program
        self.check = check
        self._kind: list[int] = []
        self._addr: list[int] = []
        self._arg: list[int] = []
        self._cycles: list[int] = []
        self._lock_stack: list[int] = []
        self._lock_addr: dict[int, int] = {}
        self._finished = False

    # -- emission ------------------------------------------------------------
    def _push(self, kind: int, addr: int, arg: int, cycles: int) -> None:
        if self._finished:
            raise TraceBuildError("builder already finished")
        self._kind.append(kind)
        self._addr.append(addr)
        self._arg.append(arg)
        self._cycles.append(cycles)

    def block(self, n_instr: int, cycles: int, code_addr: int) -> None:
        """Emit a basic block of ``n_instr`` instruction fetches taking
        ``cycles`` ideal execution cycles, starting at ``code_addr``."""
        if self.check:
            if n_instr < 1:
                raise TraceBuildError("basic block must contain >= 1 instruction")
            if cycles < 1:
                raise TraceBuildError("basic block must take >= 1 cycle")
            if not AddressLayout.is_code(code_addr):
                raise TraceBuildError(f"{code_addr:#x} is not a code address")
        self._push(IBLOCK, code_addr, n_instr, cycles)

    def read(self, addr: int, reps: int = 1) -> None:
        """Emit ``reps`` consecutive reads starting at ``addr``."""
        if self.check and reps < 1:
            raise TraceBuildError("reps must be >= 1")
        self._push(READ, addr, reps, 0)

    def write(self, addr: int, reps: int = 1) -> None:
        """Emit ``reps`` consecutive writes starting at ``addr``."""
        if self.check and reps < 1:
            raise TraceBuildError("reps must be >= 1")
        self._push(WRITE, addr, reps, 0)

    def lock(self, lock_id: int, lock_addr: int) -> None:
        """Emit a lock-acquire program point."""
        if self.check:
            if not AddressLayout.is_lock_addr(lock_addr):
                raise TraceBuildError(f"{lock_addr:#x} is not a lock address")
            if lock_id in self._lock_stack:
                raise TraceBuildError(
                    f"proc {self.proc} re-acquiring lock {lock_id} it already holds"
                )
            prev = self._lock_addr.setdefault(lock_id, lock_addr)
            if prev != lock_addr:
                raise TraceBuildError(
                    f"lock {lock_id} used with two addresses "
                    f"({prev:#x} and {lock_addr:#x})"
                )
        self._lock_stack.append(lock_id)
        self._push(LOCK, lock_addr, lock_id, 0)

    def unlock(self, lock_id: int, lock_addr: int) -> None:
        """Emit a lock-release program point.

        Releases need not be LIFO with respect to acquires (hand-over-hand
        locking releases the outer lock first), but the processor must
        actually hold the lock it releases.
        """
        if self.check:
            if lock_id not in self._lock_stack:
                raise TraceBuildError(
                    f"proc {self.proc} releasing lock {lock_id} it does not hold"
                )
        self._lock_stack.remove(lock_id)
        self._push(UNLOCK, lock_addr, lock_id, 0)

    def barrier(self, barrier_id: int) -> None:
        """Emit a barrier arrival (extension record)."""
        if self.check and self._lock_stack:
            raise TraceBuildError("barrier reached while holding a lock")
        self._push(BARRIER, 0, barrier_id, 0)

    # -- introspection ---------------------------------------------------------
    @property
    def held_locks(self) -> tuple[int, ...]:
        return tuple(self._lock_stack)

    def __len__(self) -> int:
        return len(self._kind)

    # -- finalisation ------------------------------------------------------------
    def finish(self) -> Trace:
        """Validate terminal invariants and produce the immutable Trace."""
        if self._lock_stack:
            raise TraceBuildError(
                f"proc {self.proc} finished trace holding locks {self._lock_stack}"
            )
        self._finished = True
        n = len(self._kind)
        records = np.empty(n, dtype=RECORD_DTYPE)
        records["kind"] = self._kind
        records["addr"] = self._addr
        records["arg"] = self._arg
        records["cycles"] = self._cycles
        return Trace(records, proc=self.proc, program=self.program)
