"""Incremental construction of per-processor traces.

Workload models drive one :class:`TraceBuilder` per logical processor.
The builder enforces the structural invariants MPTrace post-processing
guarantees (properly nested lock/unlock pairs per processor, addresses in
known regions) at build time, so that downstream consumers never have to
re-check them.

Two emission speeds
-------------------

* The **scalar API** (``block``/``read``/``write``/``lock``/``unlock``/
  ``barrier``) appends one record per call, validating as it goes.  It
  is the reference path and the right tool for irregular, interleaved
  emission (coordinated work queues, lock handoffs).
* The **bulk API** (``append_records``/``append_columns``/``blocks``/
  ``refs``/``strided_refs``/``extend``) appends a whole run of records
  at once.  Records are kept as chunked ndarrays -- no Python object per
  record -- and structural validation happens once per chunk with
  vectorized checks instead of per record.  When a bulk call skips
  validation (``check=False``, or a builder constructed with
  ``check=False``), :meth:`finish` runs the full
  :func:`repro.trace.validate.validate_trace` oracle over the completed
  trace, so no path silently skips validation.

The two APIs interleave freely: scalar records are buffered and sealed
into a chunk whenever a bulk run arrives, and :meth:`finish`
concatenates all chunks into the final immutable record array.
"""

from __future__ import annotations

import numpy as np

from .layout import CODE_BASE, SHARED_BASE, AddressLayout
from .records import (
    BARRIER,
    IBLOCK,
    LOCK,
    READ,
    RECORD_DTYPE,
    UNLOCK,
    WRITE,
    Trace,
)

__all__ = ["TraceBuilder", "TraceBuildError"]


class TraceBuildError(ValueError):
    """A workload emitted a structurally invalid record sequence."""


class TraceBuilder:
    """Append-only builder for one processor's trace.

    Parameters
    ----------
    proc:
        Processor index.
    layout:
        The shared :class:`AddressLayout` (used for address sanity checks
        and to look up lock-word addresses).
    program:
        Program name stamped onto the resulting :class:`Trace`.
    check:
        When True (the default), validate every record as it is emitted
        (scalar API) or every chunk as it is appended (bulk API).
        Generation-heavy callers may disable this; bulk emission then
        defers to the full validator at :meth:`finish` instead.
    """

    def __init__(
        self,
        proc: int,
        layout: AddressLayout,
        program: str = "",
        check: bool = True,
    ) -> None:
        self.proc = proc
        self.layout = layout
        self.program = program
        self.check = check
        self._kind: list[int] = []
        self._addr: list[int] = []
        self._arg: list[int] = []
        self._cycles: list[int] = []
        #: sealed record chunks (RECORD_DTYPE arrays), in emission order
        self._chunks: list[np.ndarray] = []
        self._n_sealed = 0
        self._lock_stack: list[int] = []
        self._lock_addr: dict[int, int] = {}
        self._finished = False
        #: a bulk append ran without chunk validation; finish() must
        #: run the full validator so nothing ships unchecked
        self._deferred_validation = False
        #: per-chunk sync metadata, keyed by id() of appended chunks
        #: (appended chunks are retained in _chunks, so ids stay unique)
        self._sync_memo: dict[int, tuple[list, bool] | None] = {}

    # -- emission ------------------------------------------------------------
    def _push(self, kind: int, addr: int, arg: int, cycles: int) -> None:
        if self._finished:
            raise TraceBuildError("builder already finished")
        self._kind.append(kind)
        self._addr.append(addr)
        self._arg.append(arg)
        self._cycles.append(cycles)

    def block(self, n_instr: int, cycles: int, code_addr: int) -> None:
        """Emit a basic block of ``n_instr`` instruction fetches taking
        ``cycles`` ideal execution cycles, starting at ``code_addr``."""
        if self.check:
            if n_instr < 1:
                raise TraceBuildError("basic block must contain >= 1 instruction")
            if cycles < 1:
                raise TraceBuildError("basic block must take >= 1 cycle")
            if not AddressLayout.is_code(code_addr):
                raise TraceBuildError(f"{code_addr:#x} is not a code address")
        self._push(IBLOCK, code_addr, n_instr, cycles)

    def read(self, addr: int, reps: int = 1) -> None:
        """Emit ``reps`` consecutive reads starting at ``addr``."""
        if self.check and reps < 1:
            raise TraceBuildError("reps must be >= 1")
        self._push(READ, addr, reps, 0)

    def write(self, addr: int, reps: int = 1) -> None:
        """Emit ``reps`` consecutive writes starting at ``addr``."""
        if self.check and reps < 1:
            raise TraceBuildError("reps must be >= 1")
        self._push(WRITE, addr, reps, 0)

    def lock(self, lock_id: int, lock_addr: int) -> None:
        """Emit a lock-acquire program point."""
        if self.check:
            if not AddressLayout.is_lock_addr(lock_addr):
                raise TraceBuildError(f"{lock_addr:#x} is not a lock address")
            if lock_id in self._lock_stack:
                raise TraceBuildError(
                    f"proc {self.proc} re-acquiring lock {lock_id} it already holds"
                )
            prev = self._lock_addr.setdefault(lock_id, lock_addr)
            if prev != lock_addr:
                raise TraceBuildError(
                    f"lock {lock_id} used with two addresses "
                    f"({prev:#x} and {lock_addr:#x})"
                )
        self._lock_stack.append(lock_id)
        self._push(LOCK, lock_addr, lock_id, 0)

    def unlock(self, lock_id: int, lock_addr: int) -> None:
        """Emit a lock-release program point.

        Releases need not be LIFO with respect to acquires (hand-over-hand
        locking releases the outer lock first), but the processor must
        actually hold the lock it releases.
        """
        if self.check:
            if lock_id not in self._lock_stack:
                raise TraceBuildError(
                    f"proc {self.proc} releasing lock {lock_id} it does not hold"
                )
        self._lock_stack.remove(lock_id)
        self._push(UNLOCK, lock_addr, lock_id, 0)

    def barrier(self, barrier_id: int) -> None:
        """Emit a barrier arrival (extension record)."""
        if self.check and self._lock_stack:
            raise TraceBuildError("barrier reached while holding a lock")
        self._push(BARRIER, 0, barrier_id, 0)

    # -- bulk emission -------------------------------------------------------
    def _seal_pending(self) -> None:
        """Convert buffered scalar records into a sealed chunk."""
        n = len(self._kind)
        if not n:
            return
        chunk = np.empty(n, dtype=RECORD_DTYPE)
        chunk["kind"] = self._kind
        chunk["addr"] = self._addr
        chunk["arg"] = self._arg
        chunk["cycles"] = self._cycles
        self._kind.clear()
        self._addr.clear()
        self._arg.clear()
        self._cycles.clear()
        self._chunks.append(chunk)
        self._n_sealed += n

    def append_records(self, records: np.ndarray, check: bool | None = None) -> None:
        """Append a run of pre-built records (a :data:`RECORD_DTYPE` array).

        The array is referenced, not copied -- callers reusing a cached
        chunk must never mutate it after appending.  With ``check`` (the
        builder default), the chunk is validated with vectorized checks;
        without it, the full-trace validator runs at :meth:`finish`
        instead.  LOCK/UNLOCK/BARRIER records are tracked against the
        builder's lock stack either way, so bulk and scalar emission
        interleave consistently.
        """
        if self._finished:
            raise TraceBuildError("builder already finished")
        if records.dtype != RECORD_DTYPE:
            records = np.asarray(records, dtype=RECORD_DTYPE)
        if records.ndim != 1:
            raise TraceBuildError("bulk records must be one-dimensional")
        if not len(records):
            return
        check = self.check if check is None else check
        if check:
            self._check_chunk(records)
        else:
            self._deferred_validation = True
        kinds = records["kind"]
        # sync/barrier records are rare in bulk runs; only they need the
        # per-record stack walk
        if kinds.max(initial=0) >= LOCK:
            self._track_sync(records, check)
        self._seal_pending()
        self._chunks.append(records)
        self._n_sealed += len(records)

    def append_columns(self, kind, addr, arg, cycles, check: bool | None = None) -> None:
        """Append records given as four columns (arrays or scalars).

        Scalars broadcast against the longest column, so e.g.
        ``append_columns(READ, addr_array, 4, 0)`` emits one 4-rep read
        per address.
        """
        shape = np.broadcast_shapes(
            np.shape(kind), np.shape(addr), np.shape(arg), np.shape(cycles)
        )
        if len(shape) > 1:
            raise TraceBuildError("bulk columns must be one-dimensional")
        n = shape[0] if shape else 1
        records = np.empty(n, dtype=RECORD_DTYPE)
        records["kind"] = kind
        records["addr"] = addr
        records["arg"] = arg
        records["cycles"] = cycles
        self.append_records(records, check=check)

    def extend(self, kinds, addrs, args, cycles, check: bool | None = None) -> None:
        """Append a run of records given as plain Python sequences.

        The cheap path for short irregular runs (a dozen records whose
        addresses were just computed): the rows land in the scalar
        buffer via ``list.extend`` with no ndarray round-trip.  Chunk
        validation and lock tracking match :meth:`append_records`.
        """
        if self._finished:
            raise TraceBuildError("builder already finished")
        if not (len(kinds) == len(addrs) == len(args) == len(cycles)):
            raise TraceBuildError("bulk columns must have equal lengths")
        if not kinds:
            return
        check = self.check if check is None else check
        if check:
            records = np.empty(len(kinds), dtype=RECORD_DTYPE)
            records["kind"] = kinds
            records["addr"] = addrs
            records["arg"] = args
            records["cycles"] = cycles
            self.append_records(records, check=check)
            return
        self._deferred_validation = True
        if LOCK in kinds or UNLOCK in kinds or BARRIER in kinds:
            # unchecked sync tracking, matching the scalar API with
            # check=False; structural errors surface in finish()'s
            # deferred validation
            stack = self._lock_stack
            for k, g in zip(kinds, args):
                if k == LOCK:
                    stack.append(g)
                elif k == UNLOCK:
                    stack.remove(g)
        self._kind.extend(kinds)
        self._addr.extend(addrs)
        self._arg.extend(args)
        self._cycles.extend(cycles)

    def blocks(self, n_instr, cycles, code_addr) -> None:
        """Bulk :meth:`block`: emit one basic block per element."""
        self.append_columns(IBLOCK, code_addr, n_instr, cycles)

    def refs(self, kind, addr, reps=1) -> None:
        """Bulk :meth:`read`/:meth:`write`: ``kind`` is READ or WRITE
        (scalar or per-element array)."""
        self.append_columns(kind, addr, reps, 0)

    def strided_refs(self, kind, start: int, count: int, stride: int, reps=1) -> None:
        """``count`` data references marching from ``start`` in steps of
        ``stride`` bytes (a sequential scan over an array of records)."""
        if count < 0:
            raise TraceBuildError("count must be >= 0")
        addr = np.uint64(start) + np.arange(count, dtype=np.uint64) * np.uint64(stride)
        self.append_columns(kind, addr, reps, 0)

    # -- chunk validation ----------------------------------------------------
    def _check_chunk(self, records: np.ndarray) -> None:
        """Vectorized structural checks over one bulk chunk, mirroring
        the scalar API's per-record validation."""
        kinds = records["kind"]
        if np.any(kinds > BARRIER):
            bad = int(kinds[np.argmax(kinds > BARRIER)])
            raise TraceBuildError(f"unknown record kind {bad}")
        iblock = kinds == IBLOCK
        if np.any(records["arg"][iblock] < 1):
            raise TraceBuildError("basic block must contain >= 1 instruction")
        if np.any(records["cycles"][iblock] < 1):
            raise TraceBuildError("basic block must take >= 1 cycle")
        if np.any(records["cycles"][~iblock] != 0):
            raise TraceBuildError("non-IBLOCK record carries cycles")
        if iblock.any():
            a = records["addr"][iblock]
            outside = (a < CODE_BASE) | (a >= SHARED_BASE)
            if outside.any():
                bad = int(a[np.argmax(outside)])
                raise TraceBuildError(f"{bad:#x} is not a code address")
        data = (kinds == READ) | (kinds == WRITE)
        if np.any(records["arg"][data] < 1):
            raise TraceBuildError("reps must be >= 1")

    def _track_sync(self, records: np.ndarray, check: bool) -> None:
        """Walk a chunk's LOCK/UNLOCK/BARRIER records (in order) through
        the builder's lock stack, with the scalar API's error semantics.

        Sync metadata is memoized per chunk identity: cached chunks
        (e.g. a runtime's constant dispatch pattern) re-appended many
        times extract their sync rows once, and a chunk whose lock pairs
        are balanced and self-contained is a stack no-op on unchecked
        re-appends.
        """
        memo = self._sync_memo.get(id(records))
        if memo is None:
            kinds = records["kind"]
            idx = np.flatnonzero(kinds >= LOCK)
            rows = list(
                zip(
                    kinds[idx].tolist(),
                    records["addr"][idx].tolist(),
                    records["arg"][idx].tolist(),
                )
            )
            # balanced = replaying from an empty stack ends empty without
            # underflow, tracking lock *identity* (depth alone would call
            # "lock 0 / unlock 1" a no-op); such a chunk cannot change
            # the builder's stack
            sim: list[int] = []
            balanced = True
            for kind, _, lock_id in rows:
                if kind == LOCK:
                    sim.append(lock_id)
                elif kind == UNLOCK:
                    if lock_id in sim:
                        sim.remove(lock_id)
                    else:
                        balanced = False
                        break
            balanced = balanced and not sim
            memo = self._sync_memo[id(records)] = (rows, balanced)
        rows, balanced = memo
        if balanced and not check:
            # locks acquired and released entirely within the chunk; the
            # stack ends where it started and no errors can be raised
            return
        for kind, addr, lock_id in rows:
            if kind == LOCK:
                if check:
                    if not AddressLayout.is_lock_addr(addr):
                        raise TraceBuildError(f"{addr:#x} is not a lock address")
                    if lock_id in self._lock_stack:
                        raise TraceBuildError(
                            f"proc {self.proc} re-acquiring lock {lock_id} "
                            "it already holds"
                        )
                    prev = self._lock_addr.setdefault(lock_id, addr)
                    if prev != addr:
                        raise TraceBuildError(
                            f"lock {lock_id} used with two addresses "
                            f"({prev:#x} and {addr:#x})"
                        )
                self._lock_stack.append(lock_id)
            elif kind == UNLOCK:
                if check and lock_id not in self._lock_stack:
                    raise TraceBuildError(
                        f"proc {self.proc} releasing lock {lock_id} "
                        "it does not hold"
                    )
                self._lock_stack.remove(lock_id)
            elif kind == BARRIER:
                if check and self._lock_stack:
                    raise TraceBuildError("barrier reached while holding a lock")

    # -- introspection ---------------------------------------------------------
    @property
    def held_locks(self) -> tuple[int, ...]:
        return tuple(self._lock_stack)

    def __len__(self) -> int:
        return self._n_sealed + len(self._kind)

    # -- finalisation ------------------------------------------------------------
    def finish(self) -> Trace:
        """Validate terminal invariants and produce the immutable Trace.

        If any bulk append ran without chunk validation, the full
        :func:`~repro.trace.validate.validate_trace` oracle runs here --
        unchecked bulk emission defers validation, it never skips it.
        """
        if self._lock_stack:
            raise TraceBuildError(
                f"proc {self.proc} finished trace holding locks {self._lock_stack}"
            )
        self._seal_pending()
        self._finished = True
        if not self._chunks:
            records = np.empty(0, dtype=RECORD_DTYPE)
        elif len(self._chunks) == 1:
            records = self._chunks[0]
        else:
            records = np.concatenate(self._chunks)
        trace = Trace(records, proc=self.proc, program=self.program)
        if self._deferred_validation:
            from .validate import TraceValidationError, validate_trace

            try:
                validate_trace(trace)
            except TraceValidationError as exc:
                raise TraceBuildError(
                    f"proc {self.proc}: bulk-emitted trace failed validation: {exc}"
                ) from exc
        return trace
