"""Trace record model.

A trace, in the sense of MPTrace [Eggers et al., SIGMETRICS'90], is a
per-processor stream of memory references and synchronization operations
with ideal (no-wait-state) instruction timing attached.  MPTrace records
basic-block entries and expands them to full reference streams in a
post-processing step; we keep the basic-block structure in the stored
trace because it is both smaller and exactly the information the
simulator needs (the covered instruction-fetch lines plus the block's
ideal cycle count).

Record kinds
------------

``IBLOCK``
    A basic block: ``addr`` is the first instruction byte, ``arg`` is the
    number of instruction fetches in the block, and ``cycles`` is the
    ideal execution time of the whole block (this is where *all* compute
    cycles live -- data-reference records carry no cycles of their own,
    matching MPTrace's per-instruction timing).
``READ`` / ``WRITE``
    A data reference to ``addr``.  ``arg`` is a repetition count ``k >= 1``
    meaning ``k`` consecutive same-direction references marching through
    memory starting at ``addr`` (stride = ``REP_STRIDE`` bytes).  The
    repetition encoding is a lossless compression of sequential scans:
    the same cache lines are touched in the same order, and statistics
    count every elementary reference.
``LOCK`` / ``UNLOCK``
    A lock acquire/release program point.  ``addr`` is the lock word's
    address, ``arg`` is the lock id.  All spinning has been elided, as in
    the traces used by the paper; contention is resolved at simulation
    time by the configured lock scheme.
``BARRIER``
    An extension record (not present in the paper's traces): a global
    barrier with id ``arg``.  Used by the barrier ablation.

The numpy structured dtype keeps whole traces compact and makes the
"ideal" analysis (Tables 1 and 2 of the paper) fully vectorizable.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "IBLOCK",
    "READ",
    "WRITE",
    "LOCK",
    "UNLOCK",
    "BARRIER",
    "KIND_NAMES",
    "RECORD_DTYPE",
    "REP_STRIDE",
    "Trace",
    "TraceSet",
]

IBLOCK = 0
READ = 1
WRITE = 2
LOCK = 3
UNLOCK = 4
BARRIER = 5

KIND_NAMES = {
    IBLOCK: "IBLOCK",
    READ: "READ",
    WRITE: "WRITE",
    LOCK: "LOCK",
    UNLOCK: "UNLOCK",
    BARRIER: "BARRIER",
}

#: Byte distance between successive elementary references of a repeated
#: (``arg > 1``) data record.  Four bytes = one 80386 word, so a READ with
#: ``arg == 4`` covers exactly one 16-byte cache line.
REP_STRIDE = 4

RECORD_DTYPE = np.dtype(
    [
        ("kind", np.uint8),
        ("addr", np.uint64),
        ("arg", np.uint32),
        ("cycles", np.uint32),
    ]
)


class Trace:
    """A single processor's reference stream plus identifying metadata.

    Parameters
    ----------
    records:
        A numpy structured array with dtype :data:`RECORD_DTYPE`.
    proc:
        The processor index this stream was collected on.
    program:
        Name of the traced program (e.g. ``"grav"``).
    """

    __slots__ = ("records", "proc", "program")

    def __init__(self, records: np.ndarray, proc: int, program: str = "") -> None:
        if records.dtype != RECORD_DTYPE:
            records = np.asarray(records, dtype=RECORD_DTYPE)
        self.records = records
        self.proc = int(proc)
        self.program = program

    def __len__(self) -> int:
        return len(self.records)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Trace(program={self.program!r}, proc={self.proc}, "
            f"records={len(self.records)})"
        )

    # -- convenience views -------------------------------------------------
    @property
    def kinds(self) -> np.ndarray:
        return self.records["kind"]

    @property
    def addrs(self) -> np.ndarray:
        return self.records["addr"]

    @property
    def args(self) -> np.ndarray:
        return self.records["arg"]

    @property
    def cycles(self) -> np.ndarray:
        return self.records["cycles"]

    def mask(self, *kinds: int) -> np.ndarray:
        """Boolean mask selecting records of any of the given kinds."""
        out = np.zeros(len(self.records), dtype=bool)
        k = self.records["kind"]
        for kind in kinds:
            out |= k == kind
        return out

    def count_kind(self, kind: int) -> int:
        return int(np.count_nonzero(self.records["kind"] == kind))


class TraceSet:
    """The full multi-processor trace of one program run.

    Mirrors MPTrace output: one :class:`Trace` per active processor, plus
    the address-space layout needed to classify references, and free-form
    metadata (generation parameters, scale factor, seed...).
    """

    def __init__(self, traces, layout, program: str = "", meta: dict | None = None):
        self.traces = list(traces)
        self.layout = layout
        self.program = program or (self.traces[0].program if self.traces else "")
        self.meta = dict(meta or {})

    @property
    def n_procs(self) -> int:
        return len(self.traces)

    def __iter__(self):
        return iter(self.traces)

    def __getitem__(self, proc: int) -> Trace:
        return self.traces[proc]

    def __len__(self) -> int:
        return len(self.traces)

    def total_records(self) -> int:
        return sum(len(t) for t in self.traces)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TraceSet(program={self.program!r}, procs={self.n_procs}, "
            f"records={self.total_records()})"
        )
