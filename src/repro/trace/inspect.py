"""Trace inspection utilities.

Textual tools for looking inside a trace — the analog of MPTrace's
post-processing dumps.  Used by ``python -m repro inspect`` and handy
when authoring new workload models:

* :func:`summarize_traceset` — per-processor record/reference/lock
  summary plus the address-region mix;
* :func:`dump_records` — a readable listing of one processor's records
  (with running ideal cycle counts);
* :func:`lock_event_log` — every lock/unlock program point of a trace
  set, merged across processors in record order per processor.
"""

from __future__ import annotations

import numpy as np

from .layout import AddressLayout
from .records import (
    BARRIER,
    IBLOCK,
    KIND_NAMES,
    LOCK,
    READ,
    UNLOCK,
    WRITE,
    Trace,
    TraceSet,
)
from .stats import compute_trace_stats

__all__ = ["summarize_traceset", "dump_records", "lock_event_log"]


def _region(addr: int) -> str:
    if AddressLayout.is_code(addr):
        return "code"
    if AddressLayout.is_lock_addr(addr):
        return "lock"
    if AddressLayout.is_shared(addr):
        return "shared"
    if AddressLayout.is_private(addr):
        return "private"
    return "?"


def summarize_traceset(ts: TraceSet) -> str:
    """Multi-line summary of a trace set: sizes, mixes, locks."""
    lines = [
        f"program {ts.program!r}: {ts.n_procs} processors, "
        f"{ts.total_records():,} records",
    ]
    if ts.meta:
        kv = ", ".join(f"{k}={v}" for k, v in sorted(ts.meta.items()))
        lines.append(f"meta: {kv}")
    names = getattr(ts.layout, "lock_names", {})
    if names:
        lines.append(
            "locks: " + ", ".join(names[k] for k in sorted(names))
        )
    lines.append("")
    lines.append(
        f"{'proc':>4} {'records':>9} {'work cy':>10} {'refs':>9} {'data':>8} "
        f"{'shared':>8} {'pairs':>6} {'nested':>6} {'avg held':>9}"
    )
    for t in ts:
        s = compute_trace_stats(t)
        lines.append(
            f"{t.proc:>4} {len(t):>9,} {s.work_cycles:>10,} {s.all_refs:>9,} "
            f"{s.data_refs:>8,} {s.shared_refs:>8,} {s.lock_pairs:>6} "
            f"{s.nested_locks:>6} {s.avg_held:>9.0f}"
        )
    return "\n".join(lines)


def dump_records(trace: Trace, start: int = 0, count: int = 40) -> str:
    """Readable listing of ``count`` records from ``start``, with the
    running ideal cycle position."""
    rec = trace.records
    cyc = rec["cycles"].astype(np.int64)
    pos = np.cumsum(cyc) - cyc
    out = [f"proc {trace.proc} records [{start}:{start + count}]"]
    for i in range(start, min(start + count, len(rec))):
        r = rec[i]
        kind = int(r["kind"])
        name = KIND_NAMES.get(kind, f"k{kind}")
        addr = int(r["addr"])
        arg = int(r["arg"])
        t = int(pos[i])
        if kind == IBLOCK:
            desc = f"{arg:>3} instr, {int(r['cycles'])} cy @ {addr:#x}"
        elif kind in (READ, WRITE):
            desc = f"{addr:#010x} x{arg} ({_region(addr)})"
        elif kind in (LOCK, UNLOCK):
            desc = f"lock {arg} @ {addr:#x}"
        elif kind == BARRIER:
            desc = f"barrier {arg}"
        else:  # pragma: no cover - unknown kinds rejected by validation
            desc = f"arg={arg} addr={addr:#x}"
        out.append(f"  [{i:>6}] t={t:>9,} {name:<8} {desc}")
    if start + count < len(rec):
        out.append(f"  ... {len(rec) - start - count:,} more records")
    return "\n".join(out)


def lock_event_log(ts: TraceSet, lock_id: int | None = None) -> list[tuple]:
    """Every lock/unlock program point: ``(proc, record_index,
    ideal_cycle, 'LOCK'|'UNLOCK', lock_id)``.

    Optionally filtered to one lock.  Events are in per-processor record
    order (global interleaving is a *simulation* output, not a trace
    property).
    """
    events = []
    for t in ts:
        rec = t.records
        cyc = rec["cycles"].astype(np.int64)
        pos = np.cumsum(cyc) - cyc
        mask = (rec["kind"] == LOCK) | (rec["kind"] == UNLOCK)
        for i in np.flatnonzero(mask):
            lid = int(rec["arg"][i])
            if lock_id is not None and lid != lock_id:
                continue
            kind = "LOCK" if rec["kind"][i] == LOCK else "UNLOCK"
            events.append((t.proc, int(i), int(pos[i]), kind, lid))
    return events
