"""Compact on-disk trace format.

MPTrace stores compressed basic-block traces and expands them in a
post-processing phase; our analog is a single ``.npz`` archive holding
one structured array per processor plus a JSON metadata blob (program
name, layout bookkeeping, generation parameters).  Traces round-trip
losslessly.
"""

from __future__ import annotations

import io
import json
import os

import numpy as np

from .layout import AddressLayout
from .records import RECORD_DTYPE, Trace, TraceSet

__all__ = [
    "FORMAT_VERSION",
    "save_traceset",
    "load_traceset",
    "dumps_traceset",
    "loads_traceset",
]

_FORMAT_VERSION = 1
#: public alias: the trace cache folds this into its keys so that a
#: format bump orphans every previously cached trace (see
#: :mod:`repro.trace.cache`)
FORMAT_VERSION = _FORMAT_VERSION


def _meta_blob(ts: TraceSet) -> np.ndarray:
    meta = {
        "version": _FORMAT_VERSION,
        "program": ts.program,
        "n_procs": ts.n_procs,
        "layout": ts.layout.to_dict(),
        "meta": ts.meta,
    }
    return np.frombuffer(json.dumps(meta).encode("utf-8"), dtype=np.uint8)


def _parse_meta(blob: np.ndarray) -> dict:
    meta = json.loads(bytes(blob.tobytes()).decode("utf-8"))
    if meta.get("version") != _FORMAT_VERSION:
        raise ValueError(f"unsupported trace format version {meta.get('version')}")
    return meta


def save_traceset(ts: TraceSet, path: str | os.PathLike) -> None:
    """Write a :class:`TraceSet` to ``path`` (a ``.npz`` archive)."""
    arrays = {"__meta__": _meta_blob(ts)}
    for t in ts.traces:
        arrays[f"proc{t.proc}"] = t.records
    np.savez_compressed(path, **arrays)


def load_traceset(path: str | os.PathLike) -> TraceSet:
    """Read a :class:`TraceSet` previously written by :func:`save_traceset`."""
    with np.load(path) as archive:
        meta = _parse_meta(archive["__meta__"])
        traces = []
        for p in range(meta["n_procs"]):
            records = archive[f"proc{p}"]
            if records.dtype != RECORD_DTYPE:
                raise ValueError(f"proc{p}: unexpected record dtype {records.dtype}")
            traces.append(Trace(records, proc=p, program=meta["program"]))
    layout = AddressLayout.from_dict(meta["layout"])
    return TraceSet(traces, layout, program=meta["program"], meta=meta["meta"])


def dumps_traceset(ts: TraceSet) -> bytes:
    """Serialize to bytes (same format as :func:`save_traceset`)."""
    buf = io.BytesIO()
    save_traceset(ts, buf)
    return buf.getvalue()


def loads_traceset(data: bytes) -> TraceSet:
    """Inverse of :func:`dumps_traceset`."""
    return load_traceset(io.BytesIO(data))
