"""Memory-footprint and sharing analysis of traces.

The paper's Table 1 counts *references*; this module measures what they
touch: per-processor cache-line footprints (against the 64 KB cache that
must hold them) and the cross-processor sharing structure that drives
coherence traffic.  It explains, from the trace alone, why Qsort misses
(footprint ≫ cache, lines touched by many processors in turn), why
Topopt hits (small private footprint), and why the Presto programs'
shared fractions in Table 1 overstate *active* sharing (most "shared"
lines are only ever touched by one processor).

All computations are vectorized numpy set algebra over line numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .layout import PRIVATE_BASE, SHARED_BASE
from .records import IBLOCK, READ, WRITE, Trace, TraceSet

__all__ = ["ProcFootprint", "SharingProfile", "proc_footprint", "sharing_profile"]

_LINE_SHIFT = 4  # 16-byte lines


def _data_lines(trace: Trace, writes_only: bool = False) -> np.ndarray:
    """Unique data line numbers touched by a trace (expanding the
    repetition encoding)."""
    rec = trace.records
    if writes_only:
        mask = rec["kind"] == WRITE
    else:
        mask = (rec["kind"] == READ) | (rec["kind"] == WRITE)
    addr = rec["addr"][mask].astype(np.int64)
    reps = rec["arg"][mask].astype(np.int64)
    if len(addr) == 0:
        return np.empty(0, dtype=np.int64)
    # a record covers lines [addr >> s, (addr + 4*(reps-1)) >> s]
    first = addr >> _LINE_SHIFT
    last = (addr + 4 * (reps - 1)) >> _LINE_SHIFT
    spans = last - first + 1
    # expand: most spans are 1-2 lines, so a repeat/cumsum expansion is fine
    base = np.repeat(first, spans)
    offsets = np.concatenate([np.arange(s) for s in spans]) if len(spans) else base
    return np.unique(base + offsets)


def _code_lines(trace: Trace) -> np.ndarray:
    rec = trace.records
    mask = rec["kind"] == IBLOCK
    addr = rec["addr"][mask].astype(np.int64)
    n = rec["arg"][mask].astype(np.int64)
    if len(addr) == 0:
        return np.empty(0, dtype=np.int64)
    first = addr >> _LINE_SHIFT
    last = (addr + 4 * n - 1) >> _LINE_SHIFT
    spans = last - first + 1
    base = np.repeat(first, spans)
    offsets = np.concatenate([np.arange(s) for s in spans])
    return np.unique(base + offsets)


@dataclass(frozen=True)
class ProcFootprint:
    """One processor's unique-line footprint."""

    proc: int
    data_lines: int
    shared_data_lines: int
    code_lines: int

    @property
    def total_lines(self) -> int:
        return self.data_lines + self.code_lines

    def fits_in(self, cache_lines: int = 4096) -> bool:
        """Does the whole footprint fit the paper's 64 KB / 16 B cache?"""
        return self.total_lines <= cache_lines


def proc_footprint(trace: Trace) -> ProcFootprint:
    data = _data_lines(trace)
    shared = data[
        (data >= (SHARED_BASE >> _LINE_SHIFT)) & (data < (PRIVATE_BASE >> _LINE_SHIFT))
    ]
    return ProcFootprint(
        proc=trace.proc,
        data_lines=len(data),
        shared_data_lines=len(shared),
        code_lines=len(_code_lines(trace)),
    )


@dataclass(frozen=True)
class SharingProfile:
    """Cross-processor sharing structure of one trace set."""

    program: str
    #: unique shared-region data lines touched by anyone
    shared_lines: int
    #: of those, lines touched by >= 2 processors ("actively shared")
    actively_shared: int
    #: lines *written* by one processor and *touched* by another --
    #: the coherence-traffic generators
    write_shared: int
    footprints: tuple

    @property
    def active_fraction(self) -> float:
        return self.actively_shared / self.shared_lines if self.shared_lines else 0.0


def sharing_profile(ts: TraceSet) -> SharingProfile:
    lo = SHARED_BASE >> _LINE_SHIFT
    hi = PRIVATE_BASE >> _LINE_SHIFT
    per_proc = []
    per_proc_writes = []
    for t in ts:
        lines = _data_lines(t)
        per_proc.append(lines[(lines >= lo) & (lines < hi)])
        wlines = _data_lines(t, writes_only=True)
        per_proc_writes.append(wlines[(wlines >= lo) & (wlines < hi)])

    all_lines = np.unique(np.concatenate(per_proc)) if per_proc else np.empty(0)
    counts = np.zeros(len(all_lines), dtype=np.int32)
    for lines in per_proc:
        counts[np.searchsorted(all_lines, lines)] += 1
    actively = int(np.count_nonzero(counts >= 2))

    write_shared = set()
    touched_by = {}
    for p, lines in enumerate(per_proc):
        for line in lines.tolist():
            touched_by.setdefault(line, []).append(p)
    for p, wlines in enumerate(per_proc_writes):
        for line in wlines.tolist():
            toucher = touched_by.get(line, [])
            if any(q != p for q in toucher):
                write_shared.add(line)

    return SharingProfile(
        program=ts.program,
        shared_lines=len(all_lines),
        actively_shared=actively,
        write_shared=len(write_shared),
        footprints=tuple(proc_footprint(t) for t in ts),
    )
