"""repro: reproduction of Baer & Zucker, "On Synchronization Patterns in
Parallel Programs" (ICPP 1991).

A trace-driven simulator of a shared-bus multiprocessor (Sequent
Symmetry Model B class: per-CPU 64 KB two-way write-back caches with
Illinois coherence, split-transaction bus, buffered memory) together
with models of the paper's six benchmark programs, two lock
implementations (queuing locks and test-and-test-and-set) and two
memory-consistency models (sequential consistency and weak ordering).

Quick start::

    from repro import generate_trace, simulate

    trace = generate_trace("grav")
    result = simulate(trace)           # queuing locks, sequential consistency
    print(result.summary())

The ``repro.core`` package holds the paper's study itself: the ideal
trace analysis (Tables 1-2), the experiment driver, and the
table-by-table reproduction harness.
"""

from .consistency import SEQUENTIAL, TSO, WEAK, ConsistencyModel, get_model
from .machine import (
    BusConfig,
    CacheConfig,
    MachineConfig,
    MemoryConfig,
    RunResult,
    System,
    simulate,
)
from .sync import (
    LOCK_SCHEMES,
    ExactQueuingLockManager,
    LockManager,
    QueuingLockManager,
    TestAndSetLockManager,
    TestAndTestAndSetLockManager,
    get_lock_manager,
)
from .runner import JobFailure, JobSpec, ResultCache, run_jobs
from .trace import Trace, TraceSet, load_traceset, save_traceset
from .workloads import (
    BENCHMARK_ORDER,
    WORKLOADS,
    Workload,
    generate_suite,
    generate_trace,
    get_workload,
)

__version__ = "1.0.0"

__all__ = [
    "BENCHMARK_ORDER",
    "BusConfig",
    "CacheConfig",
    "ConsistencyModel",
    "ExactQueuingLockManager",
    "JobFailure",
    "JobSpec",
    "LOCK_SCHEMES",
    "LockManager",
    "MachineConfig",
    "MemoryConfig",
    "QueuingLockManager",
    "ResultCache",
    "RunResult",
    "SEQUENTIAL",
    "System",
    "TSO",
    "TestAndSetLockManager",
    "TestAndTestAndSetLockManager",
    "Trace",
    "TraceSet",
    "WEAK",
    "WORKLOADS",
    "Workload",
    "__version__",
    "generate_suite",
    "generate_trace",
    "get_lock_manager",
    "get_model",
    "get_workload",
    "load_traceset",
    "run_jobs",
    "save_traceset",
    "simulate",
]
