#!/usr/bin/env python
"""Lock implementation shoot-out on a contended workload (§3.2 + extensions).

Run:  python examples/lock_comparison.py [workload] [scale]

Simulates the same trace under four lock implementations:

* ``queuing``        -- the paper's approximation of Graunke-Thakkar
                        queuing locks (its "good" scheme);
* ``exact-queuing``  -- the exact variant with the two extra bus
                        transactions the approximation omits (the paper
                        conjectures "no impact"; check it yourself);
* ``ttas``           -- test-and-test-and-set, the common scheme, with
                        its release burst (its "mundane" scheme);
* ``tas``            -- naive test-and-set with backoff, spinning on the
                        bus (an extension baseline; the pathology that
                        motivated all of the above).

Prints the run-time, hand-off latency, bus utilization and the §3.2
decomposition of the T&T&S slowdown.
"""

import sys

from repro import generate_trace, get_lock_manager, simulate
from repro.core.decomposition import decompose_ttas_slowdown

SCHEMES = ["queuing", "exact-queuing", "ttas", "tas"]


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "grav"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5

    trace = generate_trace(workload, scale=scale)
    print(
        f"workload {workload!r}: {trace.n_procs} processors, "
        f"{trace.total_records():,} records\n"
    )

    results = {}
    header = (
        f"{'scheme':<14} {'run-time':>12} {'vs queuing':>11} {'util %':>7} "
        f"{'handoff cy':>11} {'waiters':>8} {'bus %':>6}"
    )
    print(header)
    print("-" * len(header))
    for scheme in SCHEMES:
        result = simulate(trace, lock_manager=get_lock_manager(scheme))
        results[scheme] = result
        base = results["queuing"].run_time
        delta = 100.0 * (result.run_time - base) / base
        ls = result.lock_stats
        print(
            f"{scheme:<14} {result.run_time:>12,} {delta:>+10.2f}% "
            f"{100 * result.avg_utilization:>7.1f} {ls.avg_handoff:>11.1f} "
            f"{ls.avg_waiters_at_transfer:>8.2f} {100 * result.bus_utilization:>6.1f}"
        )

    print("\n=== §3.2 decomposition of the T&T&S slowdown ===")
    d = decompose_ttas_slowdown(results["queuing"], results["ttas"])
    print(f"slowdown:            {d.slowdown_pct:+.2f}% ({d.slowdown_cycles:,} cycles)")
    print(
        f"hand-off latency:    {d.queuing_handoff:.1f} -> {d.ttas_handoff:.1f} cycles "
        f"({d.handoff_ratio:.1f}x; paper: 1.2-1.5 -> 21-25)"
    )
    print(
        f"factor 1 (hand-off): {d.handoff_cycles:,.0f} cycles "
        f"= {d.handoff_pct:.0f}% of the increase (paper: ~78%)"
    )
    print(
        f"factor 2 (holds):    {d.hold_cycles:,.0f} cycles "
        f"= {d.hold_pct:.0f}% (paper: ~17%)"
    )
    print(f"factor 3 (bus):      residual {d.residual_pct:.0f}% (paper: ~5%)")
    print(
        f"bus utilization:     {100 * d.queuing_bus_util:.1f}% -> "
        f"{100 * d.ttas_bus_util:.1f}% "
        f"(+{100 * d.bus_util_growth:.0f}%; paper: doubled for Grav)"
    )

    print(
        "\n=== exact queuing vs the paper's approximation "
        "(the §2.4 'no impact' conjecture) ==="
    )
    q, e = results["queuing"], results["exact-queuing"]
    diff = 100.0 * (e.run_time - q.run_time) / q.run_time
    print(
        f"approximation {q.run_time:,} cycles, exact {e.run_time:,} cycles "
        f"({diff:+.2f}%)"
    )
    verdict = "holds" if abs(diff) < 2.0 else "does NOT hold"
    print(f"-> the paper's 'no impact on validity' conjecture {verdict} here.")


if __name__ == "__main__":
    main()
