#!/usr/bin/env python
"""The §3.1/§5 predictor study: which *ideal* statistic predicts lock
contention?

Run:  python examples/contention_predictors.py [scale]

The paper's central methodological claim: "the number of lock
acquisitions in the 'ideal' analysis is the best predictor of the level
of contention to get a lock.  The percentage of time that locks are held
during the running of the program is inconsequential."

This example runs the five locking benchmarks, tabulates each candidate
predictor next to the observed contention, and prints Spearman rank
correlations.
"""

import sys

from repro.core.experiment import run_suite
from repro.core.ideal import ideal_stats
from repro.core.predictors import predictor_study
from repro.workloads.registry import LOCKING_BENCHMARKS


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 1.0

    print(f"running {len(LOCKING_BENCHMARKS)} benchmarks at scale {scale}...\n")
    suite = run_suite(
        programs=list(LOCKING_BENCHMARKS), scale=scale, configs=(("queuing", "sc"),)
    )
    ideals = [ideal_stats(suite.traces[p]) for p in LOCKING_BENCHMARKS]
    results = [suite.queuing_sc[p] for p in LOCKING_BENCHMARKS]
    study = predictor_study(ideals, results)

    header = (
        f"{'program':<10} | {'lock pairs':>10} {'% held':>7} {'avg held':>9} | "
        f"{'waiters':>8} {'lock stall %':>12}"
    )
    print(header)
    print("-" * len(header))
    for i, p in enumerate(study.programs):
        print(
            f"{p:<10} | {study.lock_pairs[i]:>10.0f} {study.pct_time_held[i]:>7.1f} "
            f"{study.avg_held[i]:>9.0f} | {study.waiters_at_transfer[i]:>8.2f} "
            f"{study.lock_stall_pct[i]:>12.1f}"
        )

    print("\nSpearman rank correlation against waiters-at-transfer:")
    print(f"  lock acquisitions (pairs): {study.corr_lock_pairs:+.2f}")
    print(f"  % of time locks held:      {study.corr_pct_time_held:+.2f}")
    print(f"  average hold time:         {study.corr_avg_held:+.2f}")
    print(f"\nbest predictor: {study.best_predictor}")
    print(
        "\nNote the star witness: Pverify holds locks over a third of its "
        "execution -- longer than anyone -- yet has zero waiters, while "
        "Grav/Pdsa hold locks briefly but acquire them so often that more "
        "than half the machine queues up."
    )


if __name__ == "__main__":
    main()
