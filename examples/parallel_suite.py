"""Run the paper's full experimental grid in parallel, with caching.

Every simulation is deterministic in ``(program, scale, seed, machine,
locks, model)``, so the 18-run grid behind Tables 3-8 is embarrassingly
parallel and worth computing exactly once.  This example runs it three
ways and proves all three agree byte-for-byte:

1. serially (the classic path);
2. fanned across worker processes with ``jobs=N``, results stored in a
   content-addressed cache;
3. again with the warm cache -- zero simulations execute.

Usage::

    python examples/parallel_suite.py [scale] [jobs]
"""

import sys
import tempfile
import time

from repro.core import run_suite, table3, table5, table7
from repro.runner import ResultCache

scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.1
jobs = int(sys.argv[2]) if len(sys.argv) > 2 else 4


def render(suite) -> str:
    return "\n".join(fn(suite=suite)[0] for fn in (table3, table5, table7))


print(f"grid: 6 programs x 3 configurations at scale {scale}\n")

t0 = time.perf_counter()
serial = run_suite(scale=scale)
t_serial = time.perf_counter() - t0
print(f"serial               : {t_serial:6.2f} s   {serial.batch.stats.summary()}")

with tempfile.TemporaryDirectory() as tmp:
    cache = ResultCache(tmp)

    t0 = time.perf_counter()
    parallel = run_suite(scale=scale, jobs=jobs, cache=cache)
    t_par = time.perf_counter() - t0
    print(f"parallel (jobs={jobs:2d})   : {t_par:6.2f} s   {parallel.batch.stats.summary()}")

    t0 = time.perf_counter()
    warm = run_suite(scale=scale, jobs=jobs, cache=cache)
    t_warm = time.perf_counter() - t0
    print(f"warm cache           : {t_warm:6.2f} s   {warm.batch.stats.summary()}")

    print(f"\ncache: {cache.stats.summary()}")

    assert render(parallel) == render(serial), "parallel tables differ!"
    assert render(warm) == render(serial), "cached tables differ!"
    print("tables 3/5/7 byte-identical across serial, parallel and cached runs")
    if t_par > 0:
        print(
            f"parallel speedup {t_serial / t_par:.2f}x, "
            f"warm-cache speedup {t_serial / max(t_warm, 1e-9):.0f}x"
        )

print()
print(table3(suite=serial)[0])
