#!/usr/bin/env python
"""Define your own workload model and run it through the pipeline.

Run:  python examples/custom_workload.py

Demonstrates the public workload-authoring API: subclass ``Workload``,
drive per-processor ``ProcContext`` objects (basic blocks, data
references, locks), and get back a trace the simulator accepts.

The example program is a producer/consumer ring: each processor owns a
mailbox; processor ``p`` repeatedly produces into ``(p+1) % n``'s
mailbox under that mailbox's lock and consumes from its own.  We then
ask the paper's questions about it: how contended are the locks, and
does the choice of lock implementation matter?
"""

import numpy as np

from repro import generate_trace, get_lock_manager, simulate
from repro.core.ideal import ideal_stats
from repro.trace.layout import AddressLayout
from repro.trace.validate import validate_traceset
from repro.workloads import ProcContext, SharedLock, Workload


class MailboxRing(Workload):
    """Producer/consumer ring with per-mailbox locks."""

    name = "mailring"
    default_procs = 8
    cpi = 3.0

    ROUNDS = 300
    SLOTS = 16

    def build(self, ctxs, layout: AddressLayout, rng: np.random.Generator) -> None:
        n = len(ctxs)
        locks = [SharedLock(layout, f"mailbox{i}") for i in range(n)]
        boxes = [layout.alloc_shared(self.SLOTS * 64) for _ in range(n)]
        scratch = [layout.alloc_private(p, 4096) for p in range(n)]

        rounds = self.scaled(self.ROUNDS)
        for p, ctx in enumerate(ctxs):
            nxt = (p + 1) % n
            for r in range(rounds):
                # produce: build a message privately, then publish it
                ctx.step(
                    "ring.make",
                    30,
                    reads=[(scratch[p] + (r % 32) * 64, 4)],
                    writes=[(scratch[p] + (r % 32) * 64, 4)],
                )
                slot = boxes[nxt] + (r % self.SLOTS) * 64
                ctx.lock(locks[nxt])
                ctx.step("ring.put", 12, writes=[(slot, 8)])
                ctx.unlock(locks[nxt])
                # consume from our own mailbox
                slot = boxes[p] + (r % self.SLOTS) * 64
                ctx.lock(locks[p])
                ctx.step("ring.get", 10, reads=[(slot, 8)])
                ctx.unlock(locks[p])
                ctx.compute("ring.work", 40)


def main() -> None:
    wl = MailboxRing(scale=1.0, seed=7)
    trace = wl.generate()
    validate_traceset(trace)  # the library checks your trace's invariants
    print(f"generated {trace.total_records():,} records on {trace.n_procs} procs")

    ideal = ideal_stats(trace)
    print(
        f"ideal: {ideal.lock_pairs:.0f} lock pairs/proc, held "
        f"{ideal.avg_held:.0f} cycles avg, {ideal.pct_time_held:.1f}% of time\n"
    )

    for scheme in ("queuing", "ttas"):
        result = simulate(trace, lock_manager=get_lock_manager(scheme))
        ls = result.lock_stats
        print(
            f"{scheme:>8}: run-time {result.run_time:>9,}  "
            f"util {100 * result.avg_utilization:5.1f}%  "
            f"lock-stall {result.stall_pct_lock:5.1f}%  "
            f"waiters {ls.avg_waiters_at_transfer:.2f}  "
            f"handoff {ls.avg_handoff:.1f} cy"
        )

    print(
        "\nNeighbour-only locking keeps waiters far below the machine size, "
        "so (as the paper predicts from the lock-acquisition count) the "
        "lock implementation barely matters here."
    )


if __name__ == "__main__":
    main()
