#!/usr/bin/env python
"""How does lock contention scale with machine size?

Run:  python examples/machine_scaling.py [workload] [scale]

The paper ran on 9-12 of a 20-CPU Sequent and saw waiters-at-transfer
near half the machine for its contended programs.  This example uses
the sweep API to re-partition a workload across 2..16 processors and
watch the saturation develop: once the hot lock's duty cycle exceeds
100 %, added processors just lengthen the queue — utilization decays
like a serialized program's and waiters grow linearly.

Try it on 'pverify' to see the opposite: a program whose locks never
saturate scales almost perfectly.
"""

import sys

from repro.core.sweep import render_sweep, sweep_procs


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "grav"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5

    sizes = [2, 4, 6, 8, 10, 12, 16]
    points = sweep_procs(workload, sizes, scale=scale)
    print(render_sweep(points, title=f"{workload}: contention vs machine size"))

    # speedup analysis: total work is fixed per processor count? No --
    # re-partitioned: per-proc work shrinks as 1/P, so speedup is
    # work_total / run_time.
    base = points[0].result
    print()
    print(f"{'procs':>6} {'speedup':>8} {'efficiency':>11}")
    for p in points:
        r = p.result
        speedup = r.total_work_cycles / r.run_time
        print(f"{p.value:>6} {speedup:>8.2f} {100 * speedup / r.n_procs:>10.1f}%")

    last = points[-1].result
    if last.lock_stats.avg_waiters_at_transfer > last.n_procs * 0.35:
        print(
            f"\n-> saturated: at {last.n_procs} processors, "
            f"{last.lock_stats.avg_waiters_at_transfer:.1f} wait at every "
            "transfer; the hot lock is the machine."
        )
    else:
        print(
            f"\n-> not lock-limited: waiters stay at "
            f"{last.lock_stats.avg_waiters_at_transfer:.2f} even on "
            f"{last.n_procs} processors."
        )


if __name__ == "__main__":
    main()
