#!/usr/bin/env python
"""Weak ordering vs sequential consistency across the suite (§4).

Run:  python examples/weak_ordering_study.py [scale]

Reproduces the shape of Table 7: for every benchmark, the run-time under
sequential consistency and under weak ordering (load/ifetch bypassing in
the cache-bus buffers, stall-and-drain at sync points), the percentage
difference, and the write-hit ratio that explains why bypassing buys so
little on this machine.  Also reports the §4.2 observation that the deep
cache-bus buffers are nearly always empty when a synchronization
operation arrives.
"""

import sys

from repro import WEAK, generate_trace, simulate
from repro.workloads import BENCHMARK_ORDER


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5

    header = (
        f"{'program':<10} {'SC run-time':>12} {'WO run-time':>12} {'diff %':>7} "
        f"{'write hit %':>11} {'drain stall %':>13} {'max buf':>8}"
    )
    print(header)
    print("-" * len(header))
    worst = 0.0
    for name in BENCHMARK_ORDER:
        trace = generate_trace(name, scale=scale)
        sc = simulate(trace)
        wo = simulate(trace, model=WEAK)
        diff = 100.0 * (sc.run_time - wo.run_time) / sc.run_time
        worst = max(worst, abs(diff))
        drain = sum(m.stall_drain for m in wo.proc_metrics)
        total = sum(m.completion_time for m in wo.proc_metrics)
        print(
            f"{name:<10} {sc.run_time:>12,} {wo.run_time:>12,} {diff:>+7.2f} "
            f"{100 * wo.write_hit_ratio:>11.1f} {100 * drain / total:>13.2f} "
            f"{wo.buffer_max_occupancy:>8}"
        )

    print()
    print(f"largest |difference|: {worst:.2f}%")
    if worst < 1.0:
        print(
            "-> as the paper concludes, weak ordering buys less than 1% on "
            "this shared-bus machine; 'it is debatable whether cache-bus "
            "buffers should be as deep as those we simulated.'"
        )
    else:
        print(
            "-> a benchmark beat the paper's 1% bound; inspect its write-hit "
            "ratio and drain stalls above."
        )


if __name__ == "__main__":
    main()
