#!/usr/bin/env python
"""The paper's framing question, made runnable: do lock algorithms that
shine on artificial high-contention microbenchmarks matter for *real*
programs?

Run:  python examples/synthetic_vs_real.py [scale]

Left column: the literature's artificial program — every processor
hammers one global lock (``SyntheticContention``) — at three think-time
settings.  Right column: the paper's real-program suite.  For each, the
run-time advantage of queuing locks over test-and-test-and-set.

The expected picture (the paper's contribution in one table): the
synthetic kernel shows a large queuing-lock win that grows as think time
shrinks; among the real programs, only the two that *behave like* the
synthetic kernel (Grav and Pdsa, whose Presto scheduler lock is hammered
machine-wide) retain a few percent of it, and the other four show
nothing at all.
"""

import sys

from repro import generate_trace, get_lock_manager, simulate
from repro.workloads import BENCHMARK_ORDER, SyntheticContention


def gap(trace):
    q = simulate(trace, lock_manager=get_lock_manager("queuing"))
    t = simulate(trace, lock_manager=get_lock_manager("ttas"))
    return (
        100.0 * (t.run_time - q.run_time) / q.run_time,
        q.lock_stats.avg_waiters_at_transfer,
    )


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5

    print("=== artificial programs (the prior literature's method) ===")
    print(f"{'think instr':>12} {'T&T&S slowdown':>15} {'waiters':>8}")
    for think in (120, 40, 0):
        wl = SyntheticContention(scale=scale, think_instr=think)
        slow, waiters = gap(wl.generate())
        print(f"{think:>12} {slow:>+14.1f}% {waiters:>8.2f}")

    print("\n=== real programs (the paper's method) ===")
    print(f"{'program':>12} {'T&T&S slowdown':>15} {'waiters':>8}")
    for name in BENCHMARK_ORDER:
        if name == "topopt":
            continue  # no locks: nothing to compare
        slow, waiters = gap(generate_trace(name, scale=scale))
        print(f"{name:>12} {slow:>+14.1f}% {waiters:>8.2f}")

    print(
        "\nConclusion (the paper's): the better lock is worth real percent "
        "only where the ideal analysis already shows massive acquisition "
        "counts on one lock; elsewhere the sophistication buys nothing."
    )


if __name__ == "__main__":
    main()
