#!/usr/bin/env python
"""Why each benchmark misses: connecting trace structure to Table 3.

Run:  python examples/why_the_misses.py [scale]

For every benchmark, the footprint/sharing analysis of the *trace*
(before any simulation) next to the *simulated* miss behaviour -- the
causal story behind the paper's stall-cause table:

* Qsort: data footprint beyond one cache, lines actively write-shared
  across processors -> read misses dominate, utilization sags;
* Topopt: per-processor footprints fit the 64 KB cache, shared lines are
  read-only -> ~no misses, 99 % utilization;
* Presto programs: Table 1 calls ~all their data "shared", but the
  active fraction is far smaller -- the allocator's shared heap, not
  communication; their misses come from the genuinely write-shared
  scheduler/tree lines.
"""

import sys

from repro import generate_trace, simulate
from repro.trace.footprint import sharing_profile
from repro.workloads import BENCHMARK_ORDER


def main() -> None:
    scale = float(sys.argv[1]) if len(sys.argv) > 1 else 0.5

    header = (
        f"{'program':<9} {'fp lines':>9} {'fits 64KB':>10} {'active sh%':>11} "
        f"{'write-sh':>9} | {'read miss%':>11} {'util %':>7} {'stall=miss%':>12}"
    )
    print(header)
    print("-" * len(header))
    for name in BENCHMARK_ORDER:
        ts = generate_trace(name, scale=scale)
        prof = sharing_profile(ts)
        avg_fp = sum(f.total_lines for f in prof.footprints) / len(prof.footprints)
        fits = all(f.fits_in() for f in prof.footprints)
        result = simulate(ts)
        read_total = result.read_hits + result.read_misses
        read_miss_pct = 100 * result.read_misses / max(1, read_total)
        print(
            f"{name:<9} {avg_fp:>9,.0f} {str(fits):>10} "
            f"{100 * prof.active_fraction:>10.1f} {prof.write_shared:>9,} | "
            f"{read_miss_pct:>11.2f} {100 * result.avg_utilization:>7.1f} "
            f"{result.stall_pct_miss:>12.1f}"
        )

    print(
        "\nReading the table: a footprint beyond the cache or a large "
        "write-shared set predicts the miss-bound rows of Table 3; small "
        "read-only sharing predicts the 95%+ utilization rows."
    )


if __name__ == "__main__":
    main()
