#!/usr/bin/env python
"""Quickstart: generate one benchmark trace, analyze it "ideally", and
simulate it on the paper's machine.

Run:  python examples/quickstart.py [workload] [scale]

This walks the full pipeline of the reproduction:

1. generate an MPTrace-like multi-processor trace from a workload model
   (default: Grav, the Barnes-Hut N-body code -- the paper's most
   lock-contended program);
2. compute its *ideal* statistics (paper Tables 1 and 2): what the
   program would cost with no cache misses and no lock contention;
3. simulate it on the Sequent-Symmetry-class machine model with queuing
   locks under sequential consistency (paper Tables 3 and 4) and print
   the headline metrics.
"""

import sys

from repro import MachineConfig, generate_trace, simulate
from repro.core.ideal import ideal_stats


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "grav"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5

    print(f"=== generating {workload!r} at scale {scale} ===")
    trace = generate_trace(workload, scale=scale)
    print(
        f"{trace.n_procs} processors, {trace.total_records():,} trace records\n"
    )

    print("=== ideal analysis (no misses, no contention) ===")
    ideal = ideal_stats(trace)
    print(f"work cycles/proc:      {ideal.work_cycles:>12,.0f}")
    print(f"references/proc:       {ideal.all_refs:>12,.0f}")
    print(f"  data references:     {ideal.data_refs:>12,.0f}")
    print(f"  shared references:   {ideal.shared_refs:>12,.0f}")
    print(f"lock pairs/proc:       {ideal.lock_pairs:>12,.1f}")
    print(f"  nested:              {ideal.nested_locks:>12,.1f}")
    if ideal.lock_pairs:
        print(f"avg lock hold (ideal): {ideal.avg_held:>12,.0f} cycles")
        print(f"time in locked mode:   {ideal.pct_time_held:>11,.1f} %")
    print()

    print("=== simulation: queuing locks, sequential consistency ===")
    config = MachineConfig(n_procs=trace.n_procs)
    print(
        f"machine: {config.n_procs} CPUs, "
        f"{config.cache.size_bytes // 1024} KB {config.cache.assoc}-way caches, "
        f"{config.uncontended_miss_cycles}-cycle uncontended miss\n"
    )
    result = simulate(trace, config=config)
    print(result.summary())
    print()
    lock_wait = result.stall_pct_lock
    if lock_wait > 50:
        print(
            f"-> {lock_wait:.0f}% of stall time is spent waiting for locks: "
            "this is one of the paper's high-contention programs."
        )
    else:
        print(
            f"-> only {lock_wait:.0f}% of stall time is lock waiting: cache "
            "misses dominate, as the paper found for this program."
        )


if __name__ == "__main__":
    main()
