#!/usr/bin/env python
"""Where do the bus cycles go?  (§3.2, instrumented)

Run:  python examples/bus_anatomy.py [workload] [scale]

Attaches a bus logger and simulates the same trace under queuing locks
and under test-and-test-and-set, then prints the transaction anatomy of
each run.  On a contended workload the contrast is the paper's §3.2
argument in one screen: lock traffic explodes under T&T&S (the release
burst's reads and racing test-and-sets) while the data-fill traffic is
unchanged -- and that extra occupancy is what "slows down even those
processors that do not want the lock."
"""

import sys

from repro import MachineConfig, generate_trace, get_lock_manager
from repro.consistency import SEQUENTIAL
from repro.machine.buslog import BusLog, render_bus_anatomy
from repro.machine.system import System


def run_logged(trace, scheme):
    system = System(
        trace,
        MachineConfig(n_procs=trace.n_procs),
        get_lock_manager(scheme),
        SEQUENTIAL,
    )
    log = BusLog.attach(system)
    result = system.run()
    return log, result


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "grav"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5

    trace = generate_trace(workload, scale=scale)
    for scheme in ("queuing", "ttas"):
        log, result = run_logged(trace, scheme)
        print(render_bus_anatomy(log, result))
        print()

    qlog, qres = run_logged(trace, "queuing")
    tlog, tres = run_logged(trace, "ttas")
    ql, tl = qlog.lock_traffic_cycles(), tlog.lock_traffic_cycles()
    print(
        f"lock traffic: {ql:,} bus cycles under queuing vs {tl:,} under "
        f"T&T&S ({tl / max(1, ql):.1f}x)"
    )
    print(
        "-> the growth is entirely in LOCK_READ/LOCK_RFO/LOCK_INVAL: the "
        "release burst, not the program's data traffic."
    )


if __name__ == "__main__":
    main()
