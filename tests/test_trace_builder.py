"""Unit tests for the trace builder."""

import pytest

from repro.trace.builder import TraceBuildError, TraceBuilder
from repro.trace.layout import AddressLayout
from repro.trace.records import BARRIER, IBLOCK, LOCK, READ, UNLOCK, WRITE


@pytest.fixture
def layout():
    return AddressLayout(2)


@pytest.fixture
def b(layout):
    return TraceBuilder(0, layout, program="t")


class TestEmission:
    def test_block_record(self, b, layout):
        code = layout.alloc_code(64)
        b.block(10, 25, code)
        t = b.finish()
        assert len(t) == 1
        rec = t.records[0]
        assert rec["kind"] == IBLOCK
        assert rec["addr"] == code
        assert rec["arg"] == 10
        assert rec["cycles"] == 25

    def test_read_write_records(self, b, layout):
        a = layout.alloc_shared(64)
        b.read(a)
        b.write(a + 4, reps=4)
        t = b.finish()
        assert t.records[0]["kind"] == READ
        assert t.records[0]["arg"] == 1
        assert t.records[1]["kind"] == WRITE
        assert t.records[1]["arg"] == 4

    def test_lock_unlock_records(self, b, layout):
        la = layout.alloc_lock()
        b.lock(7, la)
        b.unlock(7, la)
        t = b.finish()
        assert t.records[0]["kind"] == LOCK
        assert t.records[0]["arg"] == 7
        assert t.records[1]["kind"] == UNLOCK

    def test_barrier_record(self, b):
        b.barrier(3)
        t = b.finish()
        assert t.records[0]["kind"] == BARRIER
        assert t.records[0]["arg"] == 3

    def test_len_tracks_records(self, b, layout):
        a = layout.alloc_shared(64)
        assert len(b) == 0
        b.read(a)
        b.read(a)
        assert len(b) == 2


class TestValidationAtBuild:
    def test_zero_instruction_block_rejected(self, b, layout):
        with pytest.raises(TraceBuildError):
            b.block(0, 5, layout.alloc_code(16))

    def test_zero_cycle_block_rejected(self, b, layout):
        with pytest.raises(TraceBuildError):
            b.block(4, 0, layout.alloc_code(16))

    def test_block_outside_code_region_rejected(self, b, layout):
        with pytest.raises(TraceBuildError):
            b.block(4, 8, layout.alloc_shared(16))

    def test_zero_reps_rejected(self, b, layout):
        with pytest.raises(TraceBuildError):
            b.read(layout.alloc_shared(16), reps=0)

    def test_reacquire_held_lock_rejected(self, b, layout):
        la = layout.alloc_lock()
        b.lock(1, la)
        with pytest.raises(TraceBuildError):
            b.lock(1, la)

    def test_release_unheld_lock_rejected(self, b, layout):
        with pytest.raises(TraceBuildError):
            b.unlock(1, layout.alloc_lock())

    def test_lock_with_two_addresses_rejected(self, b, layout):
        a1, a2 = layout.alloc_lock(), layout.alloc_lock()
        b.lock(1, a1)
        b.unlock(1, a1)
        with pytest.raises(TraceBuildError):
            b.lock(1, a2)

    def test_lock_at_data_address_rejected(self, b, layout):
        with pytest.raises(TraceBuildError):
            b.lock(1, layout.alloc_shared(16))

    def test_finish_with_held_lock_rejected(self, b, layout):
        b.lock(1, layout.alloc_lock())
        with pytest.raises(TraceBuildError):
            b.finish()

    def test_barrier_while_holding_lock_rejected(self, b, layout):
        b.lock(1, layout.alloc_lock())
        with pytest.raises(TraceBuildError):
            b.barrier(0)

    def test_emit_after_finish_rejected(self, b, layout):
        a = layout.alloc_shared(16)
        b.read(a)
        b.finish()
        with pytest.raises(TraceBuildError):
            b.read(a)


class TestNesting:
    def test_nested_locks_allowed(self, b, layout):
        outer, inner = layout.alloc_lock(), layout.alloc_lock()
        b.lock(1, outer)
        b.lock(2, inner)
        assert b.held_locks == (1, 2)
        b.unlock(2, inner)
        b.unlock(1, outer)
        assert b.held_locks == ()
        b.finish()

    def test_hand_over_hand_release_order(self, b, layout):
        """Releases need not be LIFO."""
        l1, l2 = layout.alloc_lock(), layout.alloc_lock()
        b.lock(1, l1)
        b.lock(2, l2)
        b.unlock(1, l1)  # outer released first
        b.unlock(2, l2)
        b.finish()

    def test_unchecked_builder_skips_validation(self, layout):
        b = TraceBuilder(0, layout, check=False)
        b.read(layout.alloc_shared(16), reps=1)
        b.finish()
