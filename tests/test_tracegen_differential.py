"""Differential verification of bulk trace emission.

The bulk builder APIs (``extend``/``append_records``/``append_columns``
and the workload rewrites on top of them) claim to be *byte-neutral*:
for every registry program, generating with ``bulk=True`` must produce a
traceset that serializes byte-for-byte identically to the scalar
record-by-record reference path (``bulk=False``).  This module checks
that claim exhaustively over the registry, and property-tests the
chunked builder itself: random valid emission programs split arbitrarily
across the scalar and bulk APIs must build identical record arrays, and
every structural error the scalar API raises must still be raised (at
append time when checking, at ``finish()`` otherwise).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.builder import TraceBuildError, TraceBuilder
from repro.trace.encode import dumps_traceset, loads_traceset
from repro.trace.layout import AddressLayout
from repro.trace.records import (
    IBLOCK,
    LOCK,
    READ,
    RECORD_DTYPE,
    UNLOCK,
    WRITE,
    TraceSet,
)
from repro.workloads.registry import WORKLOADS, generate_trace

#: two generation parameter points, both off the library default so the
#: suite exercises the scale/seed plumbing too
PARAMS = [(0.25, 7), (0.4, 1991)]


class TestRegistryByteIdentity:
    """bulk=True output must equal the scalar reference, byte for byte."""

    @pytest.mark.parametrize("program", sorted(WORKLOADS))
    @pytest.mark.parametrize("scale,seed", PARAMS, ids=lambda p: str(p))
    def test_bulk_equals_scalar(self, program, scale, seed):
        bulk = generate_trace(program, scale=scale, seed=seed, bulk=True)
        scalar = generate_trace(program, scale=scale, seed=seed, bulk=False)
        assert dumps_traceset(bulk) == dumps_traceset(scalar)

    def test_checked_emission_is_byte_neutral(self):
        """check=True (per-chunk / per-record validation) must not
        change the records either."""
        wl = WORKLOADS["qsort"](scale=0.2, seed=7)
        plain = wl.generate(bulk=True, check=False)
        checked = wl.generate(bulk=True, check=True)
        scalar_checked = wl.generate(bulk=False, check=True)
        assert dumps_traceset(plain) == dumps_traceset(checked)
        assert dumps_traceset(plain) == dumps_traceset(scalar_checked)


# ----------------------------------------------------------------------
# Property tests: the chunked builder vs the scalar reference
# ----------------------------------------------------------------------
@st.composite
def emission_programs(draw, max_rows=80):
    """A valid row program: (kind, addr, arg, cycles) tuples with lock
    discipline maintained, plus segment boundaries for bulk grouping."""
    n_locks = draw(st.integers(1, 3))
    n_rows = draw(st.integers(1, max_rows))
    rows = []
    held: list[int] = []
    for _ in range(n_rows):
        choices = ["block", "read", "write"]
        if len(held) < n_locks:
            choices.append("lock")
        if held:
            choices.append("unlock")
        op = draw(st.sampled_from(choices))
        if op == "block":
            rows.append(
                ("block", draw(st.integers(1, 40)), draw(st.integers(1, 120)))
            )
        elif op in ("read", "write"):
            rows.append(
                (op, draw(st.integers(0, 2000)), draw(st.integers(1, 8)),
                 draw(st.booleans()))
            )
        elif op == "lock":
            free = [l for l in range(n_locks) if l not in held]
            lid = draw(st.sampled_from(free))
            held.append(lid)
            rows.append(("lock", lid))
        else:
            lid = draw(st.sampled_from(held))
            held.remove(lid)
            rows.append(("unlock", lid))
    for lid in reversed(held):
        rows.append(("unlock", lid))
    # cut the program into segments, each emitted through one API
    cuts = draw(
        st.lists(st.integers(0, len(rows)), max_size=6).map(sorted)
    )
    bounds = [0] + cuts + [len(rows)]
    segments = [
        (draw(st.sampled_from(["scalar", "extend", "records", "columns"])), a, b)
        for a, b in zip(bounds, bounds[1:])
        if a < b
    ]
    check = draw(st.booleans())
    return rows, segments, check


def _resolve(rows, layout, proc, code, shared, locks):
    """Turn op tuples into concrete (kind, addr, arg, cycles) rows."""
    out = []
    for op in rows:
        if op[0] == "block":
            out.append((IBLOCK, code, op[1], op[2]))
        elif op[0] in ("read", "write"):
            _, off, reps, is_shared = op
            addr = (
                shared + off * 4
                if is_shared
                else 0x8000_0000 + proc * 0x0100_0000 + off * 4
            )
            out.append((READ if op[0] == "read" else WRITE, addr, reps, 0))
        elif op[0] == "lock":
            out.append((LOCK, locks[op[1]], op[1], 0))
        else:
            out.append((UNLOCK, locks[op[1]], op[1], 0))
    return out


def _build(rows, segments, check, how):
    layout = AddressLayout(1)
    code = layout.alloc_code(256)
    shared = layout.alloc_shared(16384)
    locks = [layout.alloc_lock() for _ in range(3)]
    b = TraceBuilder(0, layout, program="prop", check=check)
    concrete = _resolve(rows, layout, 0, code, shared, locks)
    if how == "scalar":
        segments = [("scalar", 0, len(concrete))]
    for api, lo, hi in segments:
        seg = concrete[lo:hi]
        if api == "scalar":
            for k, a, g, c in seg:
                if k == IBLOCK:
                    b.block(g, c, a)
                elif k == READ:
                    b.read(a, g)
                elif k == WRITE:
                    b.write(a, g)
                elif k == LOCK:
                    b.lock(g, a)
                else:
                    b.unlock(g, a)
        elif api == "extend":
            b.extend(*(list(col) for col in zip(*seg)))
        elif api == "records":
            b.append_records(np.array(seg, dtype=RECORD_DTYPE))
        else:
            kinds, addrs, args, cycs = (np.array(c) for c in zip(*seg))
            b.append_columns(kinds, addrs, args, cycs)
    trace = b.finish()
    return trace, layout


class TestChunkedBuilderProperties:
    @given(emission_programs())
    @settings(max_examples=60, deadline=None)
    def test_bulk_segmentation_is_byte_neutral(self, prog):
        """Any segmentation of a valid program across the four emission
        APIs builds the same records as the scalar reference."""
        rows, segments, check = prog
        bulk, _ = _build(rows, segments, check, "mixed")
        scalar, _ = _build(rows, segments, True, "scalar")
        assert np.array_equal(bulk.records, scalar.records)

    @given(emission_programs(max_rows=40))
    @settings(max_examples=30, deadline=None)
    def test_bulk_output_roundtrips_through_encode(self, prog):
        rows, segments, check = prog
        trace, layout = _build(rows, segments, check, "mixed")
        ts = TraceSet([trace], layout, program="prop")
        ts2 = loads_traceset(dumps_traceset(ts))
        assert np.array_equal(ts[0].records, ts2[0].records)

    @given(
        st.integers(1, 50),
        st.integers(1, 6),
        st.integers(4, 64),
        st.integers(1, 4),
    )
    @settings(max_examples=30, deadline=None)
    def test_vector_helpers_match_scalar_loops(self, n, reps, stride, blocks):
        """blocks()/refs()/strided_refs() equal their scalar loops."""
        layout = AddressLayout(1)
        code = layout.alloc_code(1024)
        shared = layout.alloc_shared(n * stride + 64)

        fast = TraceBuilder(0, layout, program="prop")
        fast.blocks(
            np.full(blocks, 7), np.full(blocks, 21), np.full(blocks, code)
        )
        fast.refs(READ, shared + np.arange(n) * 4, reps)
        fast.strided_refs(WRITE, shared, n, stride, reps)

        slow = TraceBuilder(0, layout, program="prop")
        for _ in range(blocks):
            slow.block(7, 21, code)
        for i in range(n):
            slow.read(shared + i * 4, reps)
        for i in range(n):
            slow.write(shared + i * stride, reps)

        assert np.array_equal(fast.finish().records, slow.finish().records)


# ----------------------------------------------------------------------
# Error semantics: bulk paths must not weaken the scalar guarantees
# ----------------------------------------------------------------------
def _layout():
    layout = AddressLayout(1)
    return layout, layout.alloc_code(64), layout.alloc_shared(4096), layout.alloc_lock()


class TestBulkErrorSemantics:
    def test_checked_chunk_rejects_bad_code_address(self):
        layout, _, shared, _ = _layout()
        b = TraceBuilder(0, layout)
        chunk = np.array([(IBLOCK, shared, 4, 12)], dtype=RECORD_DTYPE)
        with pytest.raises(TraceBuildError, match="not a code address"):
            b.append_records(chunk)

    def test_checked_chunk_rejects_zero_instruction_block(self):
        layout, code, _, _ = _layout()
        b = TraceBuilder(0, layout)
        with pytest.raises(TraceBuildError, match=">= 1 instruction"):
            b.append_columns(IBLOCK, code, 0, 12)

    def test_checked_chunk_rejects_zero_reps(self):
        layout, _, shared, _ = _layout()
        b = TraceBuilder(0, layout)
        with pytest.raises(TraceBuildError, match="reps must be >= 1"):
            b.refs(READ, shared, 0)

    def test_checked_chunk_rejects_unheld_unlock(self):
        layout, _, _, lock = _layout()
        b = TraceBuilder(0, layout)
        chunk = np.array([(UNLOCK, lock, 0, 0)], dtype=RECORD_DTYPE)
        with pytest.raises(TraceBuildError, match="does not hold"):
            b.append_records(chunk)

    def test_checked_chunk_rejects_reacquire(self):
        layout, _, _, lock = _layout()
        b = TraceBuilder(0, layout)
        b.lock(0, lock)
        chunk = np.array([(LOCK, lock, 0, 0)], dtype=RECORD_DTYPE)
        with pytest.raises(TraceBuildError, match="already holds"):
            b.append_records(chunk)

    def test_finish_rejects_held_locks_from_bulk(self):
        layout, _, _, lock = _layout()
        b = TraceBuilder(0, layout, check=False)
        b.extend([LOCK], [lock], [0], [0])
        with pytest.raises(TraceBuildError, match="holding locks"):
            b.finish()

    def test_unchecked_bulk_defers_to_finish_validator(self):
        """Satellite: no path skips validation -- an invalid record
        emitted through an unchecked bulk API is caught at finish()."""
        layout, code, _, _ = _layout()
        b = TraceBuilder(0, layout, check=False)
        # a data reference into the code region: structurally invalid,
        # but not checked at append time
        b.extend([READ], [code], [1], [0])
        with pytest.raises(TraceBuildError, match="failed validation"):
            b.finish()

    def test_unchecked_append_records_defers_to_finish_validator(self):
        layout, _, shared, _ = _layout()
        b = TraceBuilder(0, layout, check=True)
        chunk = np.array([(IBLOCK, shared, 4, 12)], dtype=RECORD_DTYPE)
        # per-call override: skip the chunk check, so finish must catch it
        b.append_records(chunk, check=False)
        with pytest.raises(TraceBuildError, match="failed validation"):
            b.finish()

    def test_valid_unchecked_bulk_passes_finish(self):
        layout, code, shared, lock = _layout()
        b = TraceBuilder(0, layout, check=False)
        b.extend(
            [LOCK, IBLOCK, READ, UNLOCK],
            [lock, code, shared, lock],
            [0, 5, 1, 0],
            [0, 15, 0, 0],
        )
        trace = b.finish()
        assert len(trace.records) == 4
