"""Tests for the six workload models and the Presto runtime."""

import numpy as np
import pytest

from repro.trace.records import LOCK, UNLOCK
from repro.trace.stats import compute_trace_stats
from repro.trace.validate import validate_traceset
from repro.workloads import (
    BENCHMARK_ORDER,
    WORKLOADS,
    generate_trace,
    get_workload,
)

SMALL = 0.05  # fast generation scale for structural tests


@pytest.fixture(scope="module")
def small_traces():
    return {name: generate_trace(name, scale=SMALL) for name in BENCHMARK_ORDER}


class TestRegistry:
    def test_all_six_benchmarks_registered(self):
        assert {
            "grav",
            "pdsa",
            "fullconn",
            "pverify",
            "qsort",
            "topopt",
        } <= set(WORKLOADS)

    def test_benchmark_order_is_the_paper_suite(self):
        assert BENCHMARK_ORDER == [
            "grav",
            "pdsa",
            "fullconn",
            "pverify",
            "qsort",
            "topopt",
        ]
        assert "synthetic" not in BENCHMARK_ORDER  # extension, not a table row

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            get_workload("nosuch")

    def test_paper_processor_counts(self, small_traces):
        expected = {
            "grav": 10,
            "pdsa": 12,
            "fullconn": 12,
            "pverify": 12,
            "qsort": 12,
            "topopt": 9,
        }
        for name, ts in small_traces.items():
            assert ts.n_procs == expected[name], name

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            get_workload("grav", scale=0)


class TestStructure:
    def test_all_traces_validate(self, small_traces):
        for ts in small_traces.values():
            validate_traceset(ts)

    def test_topopt_has_zero_locks(self, small_traces):
        for t in small_traces["topopt"]:
            assert t.count_kind(LOCK) == 0
            assert t.count_kind(UNLOCK) == 0

    def test_locking_benchmarks_have_locks(self, small_traces):
        for name in ("grav", "pdsa", "fullconn", "pverify", "qsort"):
            total = sum(t.count_kind(LOCK) for t in small_traces[name])
            assert total > 0, name

    def test_presto_programs_have_nested_locks(self, small_traces):
        for name in ("grav", "pdsa", "fullconn"):
            stats = [compute_trace_stats(t) for t in small_traces[name]]
            assert sum(s.nested_locks for s in stats) > 0, name

    def test_c_programs_have_no_nested_locks(self, small_traces):
        for name in ("pverify", "qsort"):
            stats = [compute_trace_stats(t) for t in small_traces[name]]
            assert sum(s.nested_locks for s in stats) == 0, name

    def test_presto_shared_fraction_near_one(self, small_traces):
        """'Due to the allocation scheme used in Presto most data is
        allocated as shared even when it need not be.'"""
        for name in ("grav", "pdsa", "fullconn"):
            s = compute_trace_stats(small_traces[name][0])
            assert s.shared_refs / s.data_refs > 0.85, name

    def test_c_programs_use_private_data(self, small_traces):
        for name in ("pverify", "topopt"):
            s = compute_trace_stats(small_traces[name][0])
            assert s.shared_refs / s.data_refs < 0.75, name

    def test_meta_records_generation_parameters(self, small_traces):
        ts = small_traces["grav"]
        assert ts.meta["scale"] == SMALL
        assert ts.meta["uses_presto"] is True
        assert small_traces["qsort"].meta["uses_presto"] is False


class TestDeterminism:
    def test_same_seed_gives_identical_traces(self):
        a = generate_trace("fullconn", scale=SMALL, seed=42)
        b = generate_trace("fullconn", scale=SMALL, seed=42)
        for ta, tb in zip(a, b):
            assert np.array_equal(ta.records, tb.records)

    def test_different_seed_gives_different_traces(self):
        a = generate_trace("pdsa", scale=SMALL, seed=1)
        b = generate_trace("pdsa", scale=SMALL, seed=2)
        assert any(
            not np.array_equal(ta.records, tb.records) for ta, tb in zip(a, b)
        )

    def test_qsort_coordination_is_deterministic(self):
        a = generate_trace("qsort", scale=SMALL, seed=9)
        b = generate_trace("qsort", scale=SMALL, seed=9)
        for ta, tb in zip(a, b):
            assert np.array_equal(ta.records, tb.records)


class TestScaling:
    def test_scale_changes_trace_length_roughly_linearly(self):
        small = generate_trace("pverify", scale=0.1)
        large = generate_trace("pverify", scale=0.4)
        ratio = large.total_records() / small.total_records()
        assert 2.5 < ratio < 6.0

    def test_tiny_scale_still_valid(self):
        for name in BENCHMARK_ORDER:
            ts = generate_trace(name, scale=0.01)
            validate_traceset(ts)
            assert ts.total_records() > 0

    def test_custom_proc_count(self):
        ts = generate_trace("fullconn", scale=SMALL, n_procs=4)
        assert ts.n_procs == 4
        validate_traceset(ts)


class TestQsortSpecifics:
    def test_every_element_eventually_sorted(self):
        """Generation must cover the whole array: the partition/local
        passes must touch every line of the allocation."""
        ts = generate_trace("qsort", scale=0.1)
        from repro.trace.records import READ, WRITE

        n_ints = max(64, int(round(32768 * 0.1)))
        touched = set()
        base = None
        for t in ts:
            rec = t.records
            data = rec[(rec["kind"] == READ) | (rec["kind"] == WRITE)]
            for addr, reps in zip(
                data["addr"].tolist(), data["arg"].tolist()
            ):
                if base is None or addr < base:
                    base = addr
        # base is the array start (first allocation touched)
        for t in ts:
            rec = t.records
            data = rec[(rec["kind"] == READ) | (rec["kind"] == WRITE)]
            for addr, reps in zip(data["addr"].tolist(), data["arg"].tolist()):
                for k in range(reps):
                    off = addr + 4 * k - base
                    if 0 <= off < n_ints * 4:
                        touched.add(off // 4)
        assert len(touched) >= n_ints * 0.95


class TestGravSpecifics:
    def test_three_timesteps_of_phases(self, small_traces):
        """Grav runs three timesteps; lock activity must recur in three
        waves of tree-lock use."""
        from repro.workloads.grav import Grav

        assert Grav.TIMESTEPS == 3

    def test_tree_lock_contendable(self, small_traces):
        """All processors use the same tree lock id."""
        ids_per_proc = []
        for t in small_traces["grav"]:
            rec = t.records
            ids_per_proc.append(set(rec["arg"][rec["kind"] == LOCK].tolist()))
        common = set.intersection(*ids_per_proc)
        # scheduler, run-queue and tree locks are global
        assert len(common) >= 3
