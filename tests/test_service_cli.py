"""CLI surface of the sweep service: ``repro submit`` / ``repro
status`` against a live server, the ``serve`` parser contract, and the
``--json`` machine-readable stats satellites."""

import asyncio
import json
import threading

import pytest

from repro.cli import build_parser, main
from repro.runner import JobSpec, ResultCache
from repro.service import Scheduler, ServiceServer

pytestmark = pytest.mark.service

GOOD = JobSpec(program="fullconn", scale=0.05)


@pytest.fixture
def service(tmp_path):
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    scheduler = Scheduler(cache=ResultCache(tmp_path / "cache"))
    server = ServiceServer(scheduler)
    asyncio.run_coroutine_threadsafe(server.start(), loop).result(timeout=30)
    try:
        yield server
    finally:
        asyncio.run_coroutine_threadsafe(server.close(), loop).result(timeout=30)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)
        loop.close()


class TestParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 8642
        assert args.worker is False
        assert args.workers is None
        assert args.backoff == 0.0
        assert args.deadline is None

    def test_submit_defaults(self):
        args = build_parser().parse_args(["submit"])
        assert args.url == "http://127.0.0.1:8642"
        assert args.programs == "all"
        assert args.locks == "queuing"

    def test_status_flags(self):
        args = build_parser().parse_args(["status", "--metrics"])
        assert args.metrics is True


class TestStatsJson:
    def test_cache_stats_json(self, tmp_path, capsys):
        rc = str(tmp_path / "rc")
        tc = str(tmp_path / "tc")
        assert main(["cache", "stats", "--cache-dir", rc, "--trace-cache-dir", tc, "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["result_cache"]["root"] == rc
        assert stats["result_cache"]["count"] == 0
        assert stats["trace_cache"]["session"]["hit_rate"] == 0.0

    def test_trace_stats_json(self, tmp_path, capsys):
        tc = str(tmp_path / "tc")
        assert main(["trace", "stats", "--trace-cache-dir", tc, "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["root"] == tc
        assert set(stats["session"]) == {"hits", "misses", "puts", "invalidated", "hit_rate"}


class TestSubmitStatus:
    def test_submit_grid_then_warm_resubmit(self, service, capsys):
        argv = [
            "--scale", "0.05",
            "submit", "--url", service.url, "--programs", "fullconn,qsort",
        ]
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "ok" in captured.out and "run-time" in captured.out
        assert "2 executed" in captured.err
        # the same grid again is answered entirely from the store
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "hit" in captured.out
        # the metrics line is cumulative over the service lifetime:
        # the 2 executions are from the first request, the 2 hits new
        assert "2 hit(s), 2 executed" in captured.err

    def test_submit_json_response(self, service, capsys):
        argv = [
            "--scale", "0.05",
            "submit", "--url", service.url, "--programs", "fullconn", "--json",
        ]
        assert main(argv) == 0
        response = json.loads(capsys.readouterr().out)
        assert response["results"][0]["status"] == "ok"
        assert response["metrics"]["executed"] == 1

    def test_submit_spec_file(self, service, tmp_path, capsys):
        spec_file = tmp_path / "specs.json"
        spec_file.write_text(json.dumps([GOOD.to_dict()]))
        assert main(["submit", "--url", service.url, "--spec-file", str(spec_file)]) == 0
        assert GOOD.cache_key()[:12] in capsys.readouterr().out

    def test_submit_failure_sets_exit_code(self, service, tmp_path, capsys):
        spec_file = tmp_path / "specs.json"
        bad = JobSpec(program="does-not-exist", scale=0.05)
        spec_file.write_text(json.dumps([bad.to_dict()]))
        assert main(["submit", "--url", service.url, "--spec-file", str(spec_file)]) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_status_human_and_json(self, service, capsys):
        main(["--scale", "0.05", "submit", "--url", service.url, "--programs", "fullconn"])
        capsys.readouterr()
        assert main(["status", "--url", service.url]) == 0
        out = capsys.readouterr().out
        assert "requests   : 1" in out
        assert "1 executed" in out
        assert main(["status", "--url", service.url, "--json"]) == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["metrics"]["executed"] == 1

    def test_status_metrics_scrape(self, service, capsys):
        assert main(["status", "--url", service.url, "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_requests_total counter" in out

    def test_no_service_answering(self, capsys):
        url = "http://127.0.0.1:9"  # discard port: nothing listens
        assert main(["submit", "--url", url]) == 2
        assert main(["status", "--url", url]) == 2
        err = capsys.readouterr().err
        assert err.count("no sweep service answering") == 2
