"""Unit tests for the queuing-lock approximation (§2.4)."""

import pytest

from repro.sync.queuing import QueuingLockManager
from tests.mock_machine import MockMachine, Recorder

LINE = 0x2000_0000 >> 4


@pytest.fixture
def setup():
    m = MockMachine()
    mgr = QueuingLockManager()
    m.attach_manager(mgr)
    return m, mgr, Recorder()


def acquire_at(m, mgr, rec, t, proc, lock_id=1, line=LINE):
    m.at(t, lambda t2: mgr.acquire(proc, lock_id, line, t2, rec.grant_cb(proc)))


def release_at(m, mgr, rec, t, proc, lock_id=1, line=LINE):
    m.at(t, lambda t2: mgr.release(proc, lock_id, line, t2, rec.release_cb(proc)))


class TestUncontended:
    def test_acquire_costs_one_memory_access(self, setup):
        m, mgr, rec = setup
        acquire_at(m, mgr, rec, 0, 0)
        m.run()
        assert rec.grants == [(0, 6, False)]  # one LOCK_MEM, 6 cycles
        assert [e[1] for e in m.log] == ["LOCK_MEM"]
        assert mgr.locks[1].owner == 0

    def test_release_costs_one_memory_access(self, setup):
        m, mgr, rec = setup
        acquire_at(m, mgr, rec, 0, 0)
        release_at(m, mgr, rec, 100, 0)
        m.run()
        assert rec.releases == [(0, 106, False)]
        assert mgr.locks[1].owner is None

    def test_stats_uncontended(self, setup):
        m, mgr, rec = setup
        acquire_at(m, mgr, rec, 0, 0)
        release_at(m, mgr, rec, 50, 0)
        m.run()
        s = mgr.stats.snapshot()
        assert s.acquisitions == 1
        assert s.transfers == 0
        assert s.hold_cycles_total == 50 - 6
        assert s.avg_uncontended_acquire == 6

    def test_release_by_non_owner_rejected(self, setup):
        m, mgr, rec = setup
        acquire_at(m, mgr, rec, 0, 0)
        m.run()
        with pytest.raises(RuntimeError, match="owned by"):
            mgr.release(3, 1, LINE, 10, rec.release_cb(3))


class TestContended:
    def _contend(self, m, mgr, rec, n_waiters=2):
        acquire_at(m, mgr, rec, 0, 0)
        for p in range(1, 1 + n_waiters):
            acquire_at(m, mgr, rec, 10, p)
        m.run()
        return m.engine.now

    def test_waiters_queue_fifo(self, setup):
        m, mgr, rec = setup
        self._contend(m, mgr, rec)
        assert [w[0] for w in mgr.locks[1].queue] == [1, 2]
        assert len(rec.grants) == 1  # only proc 0 so far

    def test_release_hands_to_head_waiter(self, setup):
        m, mgr, rec = setup
        t = self._contend(m, mgr, rec)
        release_at(m, mgr, rec, t + 10, 0)
        m.run()
        assert mgr.locks[1].owner == 1
        # proc 1 resumed via the c2c transfer, flagged contended
        grant = [g for g in rec.grants if g[0] == 1][0]
        assert grant[2] is True

    def test_transfer_stats(self, setup):
        m, mgr, rec = setup
        t = self._contend(m, mgr, rec, n_waiters=3)
        release_at(m, mgr, rec, t + 10, 0)
        m.run()
        s = mgr.stats.snapshot()
        assert s.transfers == 1
        assert s.waiters_at_transfer_total == 2  # 3 waiting, head took it
        assert s.avg_handoff > 0

    def test_chain_of_transfers_preserves_fifo_order(self, setup):
        m, mgr, rec = setup
        self._contend(m, mgr, rec, n_waiters=3)
        order = []
        for _ in range(3):
            holder = mgr.locks[1].owner
            release_at(m, mgr, rec, m.engine.now + 20, holder)
            m.run()
            order.append(mgr.locks[1].owner)
        assert order == [1, 2, 3]
        release_at(m, mgr, rec, m.engine.now + 20, 3)
        m.run()
        assert mgr.locks[1].owner is None
        assert mgr.stats.snapshot().transfers == 3

    def test_hold_time_measured_from_handoff_completion(self, setup):
        m, mgr, rec = setup
        t = self._contend(m, mgr, rec, n_waiters=1)
        t_rel = t + 10
        release_at(m, mgr, rec, t_rel, 0)
        m.run()
        t_granted = [g for g in rec.grants if g[0] == 1][0][1]
        assert t_granted == t_rel + 3  # the 3-cycle cache-to-cache transfer
        t_rel2 = m.engine.now + 100
        release_at(m, mgr, rec, t_rel2, 1)
        m.run()
        s = mgr.stats.snapshot()
        # proc 0's hold starts when its acquire access completed (t=6);
        # proc 1's when the hand-off transfer delivered the lock
        assert s.hold_cycles_total == (t_rel - 6) + (t_rel2 - t_granted)

    def test_handoff_uses_c2c_transfer(self, setup):
        m, mgr, rec = setup
        t = self._contend(m, mgr, rec, n_waiters=1)
        release_at(m, mgr, rec, t + 10, 0)
        m.run()
        assert m.ops("LOCK_XFER")  # the paper's cache-to-cache hand-off

    def test_invariants_hold_under_contention(self, setup):
        m, mgr, rec = setup
        self._contend(m, mgr, rec, n_waiters=3)
        mgr.check_invariants()


class TestMultipleLocks:
    def test_independent_locks_do_not_interact(self, setup):
        m, mgr, rec = setup
        acquire_at(m, mgr, rec, 0, 0, lock_id=1, line=LINE)
        acquire_at(m, mgr, rec, 0, 1, lock_id=2, line=LINE + 1)
        m.run()
        assert mgr.locks[1].owner == 0
        assert mgr.locks[2].owner == 1
        assert len(rec.grants) == 2

    def test_lock_line_conflict_detected(self, setup):
        m, mgr, rec = setup
        acquire_at(m, mgr, rec, 0, 0)
        m.run()
        with pytest.raises(ValueError, match="two lines"):
            mgr.state_of(1, LINE + 99)

    def test_per_lock_acquisition_counts(self, setup):
        m, mgr, rec = setup
        acquire_at(m, mgr, rec, 0, 0)
        release_at(m, mgr, rec, 10, 0)
        acquire_at(m, mgr, rec, 30, 1)
        m.run()
        assert mgr.stats.per_lock_acquisitions[1] == 2
