"""Property-based tests of the private-window fast path.

Two families:

* **Static conservativeness** -- :func:`repro.machine.fastpath.
  build_tables` against straight-line reference computations: only
  bus-free record kinds are ever eligible, line spans and prefix sums
  match first-principles arithmetic, and ``win_end`` is exactly the
  first statically ineligible record.

* **Dynamic equivalence** -- random valid multi-processor programs
  (shared data, locks, both schemes, both models, deliberately tiny
  caches and batch budgets to maximize validation failures and window
  truncation) run with ``fast_path`` on and off must produce
  byte-identical serialized results, and every span the fast path
  actually retired must lie inside a statically eligible run.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consistency import SEQUENTIAL, WEAK
from repro.machine.cache import Cache
from repro.machine.config import CacheConfig, MachineConfig
from repro.machine.fastpath import build_tables
from repro.machine.system import System
from repro.runner.serialize import result_to_dict
from repro.sync import QueuingLockManager, TestAndTestAndSetLockManager
from repro.trace.records import (
    BARRIER,
    IBLOCK,
    LOCK,
    READ,
    REP_STRIDE,
    UNLOCK,
    WRITE,
)
from tests.test_trace_properties import build_traceset, trace_programs

schemes = st.sampled_from([QueuingLockManager, TestAndTestAndSetLockManager])
models = st.sampled_from([SEQUENTIAL, WEAK])
programs_strategy = st.lists(trace_programs(max_ops=40), min_size=1, max_size=3)
# tiny caches force capacity evictions; tiny budgets force window
# truncation; both paths must still agree bit for bit
batches = st.sampled_from([1, 3, 32])
cache_cfgs = st.sampled_from(
    [
        CacheConfig(size_bytes=256, line_bytes=16, assoc=2),
        CacheConfig(size_bytes=1024, line_bytes=16, assoc=2),
        CacheConfig(),
    ]
)


def _machine(ts, cache_cfg, batch, fast):
    # segment_kernel off: this suite isolates the *window* fast path
    # (the kernel would retire the private runs first and leave these
    # properties vacuous; it has its own suite in
    # tests/test_kernel_properties.py)
    return MachineConfig(
        n_procs=ts.n_procs,
        cache=cache_cfg,
        batch_records=batch,
        fast_path=fast,
        segment_kernel=False,
    )


def _canonical(result):
    return json.loads(json.dumps(result_to_dict(result), sort_keys=True))


class TestStaticTables:
    @given(programs_strategy, st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_only_bus_free_kinds_eligible(self, programs, writethrough):
        ts = build_traceset(programs)
        for trace in ts:
            fp = build_tables(trace.records, 4, writethrough)
            kinds = trace.records["kind"]
            for i, k in enumerate(kinds.tolist()):
                if k in (LOCK, UNLOCK, BARRIER):
                    assert not fp.elig[i]
                    assert fp.code[i] is None
                elif k == WRITE and writethrough:
                    assert not fp.elig[i]
                elif k in (READ, IBLOCK) or k == WRITE:
                    assert fp.elig[i]
                    assert fp.code[i] is not None

    @given(programs_strategy)
    @settings(max_examples=60, deadline=None)
    def test_win_end_is_first_ineligible(self, programs):
        ts = build_traceset(programs)
        for trace in ts:
            fp = build_tables(trace.records, 4, False)
            n = fp.n_records
            for i in range(n):
                # reference: scan forward for the first ineligible record
                end = i
                while end < n and fp.elig[end]:
                    end += 1
                if fp.elig[i]:
                    assert fp.win_end[i] == end
                else:
                    assert fp.win_end[i] == i

    @given(programs_strategy)
    @settings(max_examples=60, deadline=None)
    def test_spans_and_prefix_sums_match_arithmetic(self, programs):
        ts = build_traceset(programs)
        offset_bits = 4
        for trace in ts:
            rec = trace.records
            fp = build_tables(rec, offset_bits, False)
            reads = writes = ifetches = cycles = refs = 0
            for i in range(len(rec)):
                kind = int(rec["kind"][i])
                addr = int(rec["addr"][i])
                arg = int(rec["arg"][i])
                assert fp.c_read[i] == reads
                assert fp.c_write[i] == writes
                assert fp.c_ifetch[i] == ifetches
                assert fp.c_cycles[i] == cycles
                assert fp.c_refs[i] == refs
                if fp.elig[i]:
                    lo = addr >> offset_bits
                    hi = (addr + (arg - 1) * REP_STRIDE) >> offset_bits
                    assert (fp.line_lo[i], fp.line_hi[i]) == (lo, hi)
                    code = fp.code[i]
                    if lo == hi:
                        assert code == (~lo if kind == WRITE else lo)
                    else:
                        assert code == (lo, hi, kind == WRITE)
                    refs += arg
                    if kind == READ:
                        reads += arg
                    elif kind == WRITE:
                        writes += arg
                    else:
                        ifetches += arg
                        cycles += int(rec["cycles"][i])
            assert fp.c_refs[len(rec)] == refs


class TestDynamicEquivalence:
    @given(programs_strategy, schemes, models, batches, cache_cfgs)
    @settings(max_examples=60, deadline=None)
    def test_fast_path_is_byte_identical(
        self, programs, scheme_cls, model, batch, cache_cfg
    ):
        ts = build_traceset(programs)
        results = {}
        logs = None
        for fast in (True, False):
            system = System(
                ts,
                _machine(ts, cache_cfg, batch, fast),
                scheme_cls(),
                model,
                max_events=2_000_000,
            )
            if fast:
                for p in system.procs:
                    p._fp_log = []
            results[fast] = _canonical(system.run())
            if fast:
                logs = [(p, list(p._fp_log)) for p in system.procs]
        assert results[True] == results[False]

        # every retired span sits inside a statically eligible run, the
        # spans are disjoint and in order, and the budget cap holds
        for proc, spans in logs:
            fp = proc._fp
            last_end = 0
            for start, end in spans:
                assert start >= last_end
                assert end - start >= 1
                assert end - start <= batch
                assert fp.elig[start]
                assert fp.win_end[start] >= end
                last_end = end
            assert proc.fp_records == sum(e - s for s, e in spans)
            assert proc.fp_windows == len(spans)

    def test_fast_path_actually_retires_private_runs(self):
        """Anti-vacuity: on an uncontended private working set the fast
        path must retire nearly everything after the cold pass."""
        from tests.conftest import make_traceset

        def prog(b, layout):
            code = layout.alloc_code(1024)
            data = layout.alloc_private(0, 1024)
            for rep in range(40):
                b.block(8, 8, code)
                for j in range(8):
                    b.read(data + 64 * j, reps=4)
                    b.write(data + 64 * j, reps=2)

        ts = make_traceset([prog])
        system = System(
            ts,
            MachineConfig(n_procs=1, segment_kernel=False),
            QueuingLockManager(),
            SEQUENTIAL,
        )
        result = system.run()
        proc = system.procs[0]
        total = sum(m.refs_processed for m in result.proc_metrics)
        assert proc.fp_refs > 0.8 * total
        assert proc.fp_windows > 0
