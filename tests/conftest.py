"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.machine.config import MachineConfig
from repro.trace.builder import TraceBuilder
from repro.trace.layout import AddressLayout
from repro.trace.records import TraceSet


def pytest_addoption(parser):
    parser.addoption(
        "--regen-golden",
        action="store_true",
        default=False,
        help=(
            "rewrite tests/golden/*.json from the current simulator "
            "instead of comparing against it (review the diff before "
            "committing: goldens pin simulator behaviour)"
        ),
    )
    parser.addoption(
        "--regen-predictor",
        action="store_true",
        default=False,
        help=(
            "rewrite tests/golden/predictor_validation.json from the "
            "current predictor and simulator (review the accuracy "
            "numbers before committing; docs/locks.md shows the table)"
        ),
    )


@pytest.fixture
def layout2():
    return AddressLayout(n_procs=2)


@pytest.fixture
def layout4():
    return AddressLayout(n_procs=4)


def make_traceset(build_fns, layout=None, program="test"):
    """Build a TraceSet from per-processor builder functions.

    ``build_fns`` is a list of callables, one per processor, each taking
    ``(builder, layout)`` and emitting records.
    """
    n = len(build_fns)
    layout = layout or AddressLayout(n_procs=n)
    traces = []
    for p, fn in enumerate(build_fns):
        b = TraceBuilder(p, layout, program=program)
        fn(b, layout)
        traces.append(b.finish())
    return TraceSet(traces, layout, program=program)


def tiny_machine(n_procs=2, **kwargs) -> MachineConfig:
    """A small, fast machine configuration for unit tests."""
    kwargs.setdefault("batch_records", 1)
    return MachineConfig(n_procs=n_procs, **kwargs)


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def audit_everything():
    """Run every System built during the test under a raise-mode
    invariant auditor (the simulator sanitizer, see repro.audit): any
    coherence/bus/lock/accounting violation fails the test at the
    offending cycle.  Suites that exercise whole simulations opt in with
    a module-level autouse fixture."""
    from repro import audit

    audit.set_default("raise")
    yield
    audit.set_default(None)
