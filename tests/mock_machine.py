"""A mock LockPortAPI: serializes lock-line operations on a fake bus
with fixed per-op latencies, driven by a real Engine.

Lets the lock-scheme state machines be tested deterministically without
caches, processors or real arbitration.
"""

from __future__ import annotations

from collections import deque

from repro.machine.buffers import (
    LOCK_INVAL,
    LOCK_MEM,
    LOCK_READ,
    LOCK_RFO,
    LOCK_XFER,
    OP_NAMES,
)
from repro.machine.engine import Engine

#: latencies mirroring the real system's uncontended costs
LATENCY = {
    LOCK_MEM: 6,
    LOCK_READ: 3,
    LOCK_RFO: 3,
    LOCK_INVAL: 1,
    LOCK_XFER: 3,
}


class MockMachine:
    """Single shared 'bus': ops run one at a time, FIFO (front ops jump
    the queue), each holding for its LATENCY."""

    def __init__(self) -> None:
        self.engine = Engine()
        self.log: list[tuple[int, str, int, int]] = []  # (t, opname, proc, line)
        self._q: deque = deque()
        self._busy = False
        self.lockmgr = None  # set by attach_manager for snoop hooks

    def attach_manager(self, mgr) -> None:
        self.lockmgr = mgr
        mgr.attach(self)

    # -- LockPortAPI ------------------------------------------------------------
    def issue_lock_op(self, proc, kind, line, on_done, front=False):
        item = (proc, kind, line, on_done)
        if front:
            self._q.appendleft(item)
        else:
            self._q.append(item)
        if not self._busy:
            self._grant(self.engine.now)

    def call_at(self, time, fn):
        self.engine.at(max(time, self.engine.now), fn)

    # -- fake bus ---------------------------------------------------------------
    def _grant(self, t):
        if not self._q:
            self._busy = False
            return
        self._busy = True
        proc, kind, line, on_done = self._q.popleft()
        hold = LATENCY[kind]
        self.log.append((t, OP_NAMES[kind], proc, line))
        if self.lockmgr is not None:
            if kind == LOCK_RFO:
                hook = getattr(self.lockmgr, "on_lock_rfo", None)
                if hook:
                    hook(line, proc, t)
            elif kind == LOCK_INVAL:
                hook = getattr(self.lockmgr, "on_lock_inval", None)
                if hook:
                    hook(line, proc, t)

        def done(t2, on_done=on_done):
            on_done(t2)
            self._grant(t2)

        self.engine.at(t + hold, done)

    def run(self):
        self.engine.run()

    def at(self, time, fn):
        """Schedule a manager call at a specific simulated time (the real
        system always invokes acquire/release with the global clock at
        the processor's local time)."""
        self.engine.at(max(time, self.engine.now), fn)

    def ops(self, kind_name=None):
        if kind_name is None:
            return list(self.log)
        return [e for e in self.log if e[1] == kind_name]


class Recorder:
    """Collects (proc, time, contended) grants/releases."""

    def __init__(self) -> None:
        self.grants: list[tuple[int, int, bool]] = []
        self.releases: list[tuple[int, int, bool]] = []

    def grant_cb(self, proc):
        def cb(t, contended):
            self.grants.append((proc, t, contended))

        return cb

    def release_cb(self, proc):
        def cb(t, contended):
            self.releases.append((proc, t, contended))

        return cb
