"""The HTTP front end end-to-end over localhost: submit grids through
the scheduler, read metrics/status, and exercise the error paths —
using the same blocking :class:`ServiceClient` the CLI uses."""

import asyncio
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.runner import JobSpec, ResultCache
from repro.service import Scheduler, ServiceClient, ServiceServer

pytestmark = pytest.mark.service

GOOD = JobSpec(program="fullconn", scale=0.05)
FAULTY = JobSpec(program="does-not-exist", scale=0.05)


@pytest.fixture
def service(tmp_path):
    """A live service on an ephemeral localhost port, its event loop on
    a background thread so the blocking client can call it from the
    test thread."""
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    # jobs=2 -> pool backend, so concurrent duplicates genuinely race
    # the in-flight table (the dedup acceptance path)
    scheduler = Scheduler(jobs=2, cache=ResultCache(tmp_path / "cache"))
    server = ServiceServer(scheduler)
    asyncio.run_coroutine_threadsafe(server.start(), loop).result(timeout=30)
    try:
        yield server, ServiceClient(server.url, timeout=120)
    finally:
        asyncio.run_coroutine_threadsafe(server.close(), loop).result(timeout=30)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)
        loop.close()


class TestEndpoints:
    def test_healthz(self, service):
        _server, client = service
        assert client.healthy()

    def test_submit_cold_then_warm(self, service):
        _server, client = service
        cold = client.submit(specs=[GOOD])
        assert [r["status"] for r in cold["results"]] == ["ok"]
        assert cold["results"][0]["key"] == GOOD.cache_key()
        assert cold["results"][0]["result"]["run_time"] > 0
        warm = client.submit(specs=[GOOD])
        assert [r["status"] for r in warm["results"]] == ["hit"]
        assert warm["results"][0]["result"] == cold["results"][0]["result"]
        assert warm["metrics"]["cache_hits"] == 1
        assert warm["metrics"]["executed"] == 1

    def test_submit_grid_body(self, service):
        _server, client = service
        response = client.submit(
            grid={
                "programs": ["fullconn", "qsort"],
                "locks": ["queuing", "ttas"],
                "scale": 0.05,
            },
            include_results=False,
        )
        assert len(response["results"]) == 4
        assert all(r["ok"] for r in response["results"])
        assert all("result" not in r for r in response["results"])
        assert "4 cell(s)" in response["summary"]

    def test_duplicate_submissions_simulate_once(self, service):
        """Acceptance: one POST carrying N identical cold cells runs
        exactly one simulation; every entry reports the same result."""
        _server, client = service
        response = client.submit(specs=[GOOD] * 3)
        metrics = response["metrics"]
        assert metrics["executed"] == 1
        assert metrics["dedup_attached"] == 2
        statuses = sorted(r["status"] for r in response["results"])
        assert statuses == ["attached", "attached", "ok"]
        results = [r["result"] for r in response["results"]]
        assert results[0] == results[1] == results[2]

    def test_result_roundtrip_and_404(self, service):
        _server, client = service
        assert client.result(GOOD.cache_key()) is None  # cold: 404
        submitted = client.submit(specs=[GOOD])
        fetched = client.result(GOOD.cache_key())
        assert fetched == submitted["results"][0]["result"]
        assert client.result("0" * 64) is None

    def test_failed_cell_reported_per_entry(self, service):
        _server, client = service
        response = client.submit(specs=[FAULTY, GOOD])
        by_label = {r["label"]: r for r in response["results"]}
        bad = by_label[FAULTY.label()]
        assert bad["ok"] is False and bad["status"] == "failed"
        assert bad["error"]["kind"] == "error"
        assert by_label[GOOD.label()]["ok"] is True

    def test_status_snapshot(self, service):
        _server, client = service
        client.submit(specs=[GOOD])
        status = client.status()
        assert status["jobs"] == 2
        assert status["metrics"]["executed"] == 1
        assert status["cache"]["session"]["puts"] == 1
        assert status["uptime_s"] >= 0
        assert status["aggregator"]["cells"] == 1

    def test_metrics_exposition(self, service):
        _server, client = service
        client.submit(specs=[GOOD])
        client.submit(specs=[GOOD])
        text = client.metrics()
        assert "# TYPE repro_requests_total counter" in text
        assert "repro_requests_total 2" in text
        assert "repro_cache_hits_total 1" in text
        assert "repro_in_flight 0" in text
        assert 'repro_stage_latency_seconds_count{stage="total"} 2' in text
        assert 'repro_result_cache_ops_total{op="puts"} 1' in text
        # every scrape line is well-formed: name{labels} value or
        # name value, no stray content
        for line in text.strip().splitlines():
            assert line.startswith("#") or len(line.rsplit(" ", 1)) == 2


class TestErrorPaths:
    def _post(self, url, path, body: bytes):
        req = urllib.request.Request(
            url + path, data=body, headers={"Content-Type": "application/json"}
        )
        return urllib.request.urlopen(req, timeout=30)

    def test_submit_rejects_non_json(self, service):
        server, _client = service
        with pytest.raises(urllib.error.HTTPError) as info:
            self._post(server.url, "/submit", b"not json")
        assert info.value.code == 400
        assert "not JSON" in json.loads(info.value.read())["error"]

    def test_submit_rejects_empty_request(self, service):
        server, _client = service
        with pytest.raises(urllib.error.HTTPError) as info:
            self._post(server.url, "/submit", b"{}")
        assert info.value.code == 400

    def test_submit_requires_post(self, service):
        server, _client = service
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(server.url + "/submit", timeout=30)
        assert info.value.code == 405

    def test_unknown_route_404(self, service):
        server, _client = service
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(server.url + "/nope", timeout=30)
        assert info.value.code == 404
