"""The headline reproduction: the paper's findings as assertions.

These run the full suite at the default scale (the library's reproduction
scale, ~1/20 of the paper's traces) and check the *shape* of every
result the paper argues from: utilization orderings, stall causes,
waiters at transfer, the queuing vs. T&T&S gap and its decomposition,
and the weak-ordering non-result.  They are the slowest tests in the
suite (tens of seconds) and are marked ``repro``.
"""

import pytest

from repro.core.decomposition import decompose_ttas_slowdown
from repro.core.experiment import run_suite
from repro.core.ideal import ideal_stats

pytestmark = pytest.mark.repro


@pytest.fixture(scope="module")
def suite():
    return run_suite(scale=1.0, seed=1991)


class TestTable3QueuingRuntime:
    def test_utilization_ordering(self, suite):
        u = {p: r.avg_utilization for p, r in suite.queuing_sc.items()}
        # Grav and Pdsa collapse; the others stay high; Qsort in between
        assert u["grav"] < 0.55
        assert u["pdsa"] < 0.55
        assert u["qsort"] < 0.85
        for p in ("fullconn", "pverify", "topopt"):
            assert u[p] > 0.90, p
        assert max(u["grav"], u["pdsa"]) < u["qsort"] < min(
            u["fullconn"], u["pverify"], u["topopt"]
        )

    def test_stall_causes(self, suite):
        r = suite.queuing_sc
        # contended programs: stalls are lock waits
        assert r["grav"].stall_pct_lock > 85
        assert r["pdsa"].stall_pct_lock > 85
        # the rest: stalls are cache misses
        for p in ("pverify", "qsort", "topopt"):
            assert r[p].stall_pct_miss > 85, p
        assert r["fullconn"].stall_pct_miss > 70

    def test_grav_has_lowest_utilization(self, suite):
        u = {p: r.avg_utilization for p, r in suite.queuing_sc.items()}
        assert min(u, key=u.get) in ("grav", "pdsa")


class TestTable4QueuingContention:
    def test_waiters_above_half_machine_for_contended(self, suite):
        """'For Grav and Pdsa this number is slightly over half the
        number of processors' -- extremely heavy contention."""
        for p in ("grav", "pdsa"):
            r = suite.queuing_sc[p]
            w = r.lock_stats.avg_waiters_at_transfer
            assert w > r.n_procs * 0.35, (p, w)

    def test_pverify_waiters_near_zero(self, suite):
        assert suite.queuing_sc["pverify"].lock_stats.avg_waiters_at_transfer < 0.2

    def test_low_contention_programs(self, suite):
        for p in ("fullconn", "qsort"):
            assert suite.queuing_sc[p].lock_stats.avg_waiters_at_transfer < 2.0, p

    def test_transfer_counts_ordering(self, suite):
        n = {p: suite.queuing_sc[p].lock_stats.transfers for p in suite.programs() if p != "topopt"}
        assert n["grav"] > n["pdsa"] > n["fullconn"]
        assert n["pverify"] < 20

    def test_transfer_holds_exceed_overall_holds_for_contended(self, suite):
        for p in ("grav", "pdsa"):
            ls = suite.queuing_sc[p].lock_stats
            assert ls.avg_transfer_hold > ls.avg_hold


class TestSection31Predictor:
    def test_acquisitions_predict_contention_held_time_does_not(self, suite):
        from repro.core.predictors import predictor_study

        programs = [p for p in suite.programs() if p != "topopt"]
        ideals = [ideal_stats(suite.traces[p]) for p in programs]
        results = [suite.queuing_sc[p] for p in programs]
        study = predictor_study(ideals, results)
        assert study.best_predictor == "lock_pairs"
        # The paper's own Table 2 vs Table 4 numbers give Spearman
        # rho = 0.6 for lock pairs (Pdsa out-ranks Grav in waiters);
        # require at least that, and a wide gap to %-time-held.
        assert study.corr_lock_pairs >= 0.55
        assert study.corr_pct_time_held <= study.corr_lock_pairs - 0.4
        assert study.corr_avg_held <= study.corr_lock_pairs - 0.4


class TestSection32TTAS:
    def test_contended_programs_slow_down(self, suite):
        """Paper: +8.0% (Grav), +8.1% (Pdsa).  Band: 2-15%."""
        for p in ("grav", "pdsa"):
            q = suite.queuing_sc[p].run_time
            t = suite.ttas_sc[p].run_time
            slow = (t - q) / q
            assert 0.02 < slow < 0.15, (p, slow)

    def test_uncontended_programs_unaffected(self, suite):
        for p in ("fullconn", "pverify", "qsort"):
            q = suite.queuing_sc[p].run_time
            t = suite.ttas_sc[p].run_time
            assert abs(t - q) / q < 0.02, p

    def test_handoff_latency_gap(self, suite):
        """Paper: 21-25 cycles vs 1.2-1.5.  Our queuing hand-off is a
        3-cycle cache-to-cache transfer, so the ratio band is >= 4x with
        T&T&S in the 12-40 cycle range."""
        for p in ("grav", "pdsa"):
            q = suite.queuing_sc[p].lock_stats.avg_handoff
            t = suite.ttas_sc[p].lock_stats.avg_handoff
            assert 12 < t < 40, (p, t)
            assert t / q > 4, (p, t, q)

    def test_bus_contention_grows(self, suite):
        """Paper: bus utilization doubled for Grav, +40% for Pdsa."""
        g = decompose_ttas_slowdown(suite.queuing_sc["grav"], suite.ttas_sc["grav"])
        p = decompose_ttas_slowdown(suite.queuing_sc["pdsa"], suite.ttas_sc["pdsa"])
        assert g.bus_util_growth > 0.5
        assert p.bus_util_growth > 0.25

    def test_handoff_factor_is_large(self, suite):
        for prog in ("grav", "pdsa"):
            d = decompose_ttas_slowdown(
                suite.queuing_sc[prog], suite.ttas_sc[prog]
            )
            assert d.handoff_pct > 40, prog

    def test_waiters_essentially_unchanged(self, suite):
        """Table 4 vs 6: contention pattern is a program property, not a
        lock-scheme property."""
        for p in ("grav", "pdsa"):
            wq = suite.queuing_sc[p].lock_stats.avg_waiters_at_transfer
            wt = suite.ttas_sc[p].lock_stats.avg_waiters_at_transfer
            assert abs(wq - wt) < 1.2, (p, wq, wt)


class TestSection4WeakOrdering:
    def test_improvement_below_one_percent(self, suite):
        """Table 7: 'in all cases it is less than 1%'."""
        for p in suite.programs():
            sc = suite.queuing_sc[p].run_time
            wo = suite.queuing_wo[p].run_time
            diff = abs(sc - wo) / sc
            assert diff < 0.01, (p, diff)

    def test_lock_patterns_unchanged(self, suite):
        """Table 8 vs 4."""
        for p in ("grav", "pdsa"):
            a = suite.queuing_sc[p].lock_stats
            b = suite.queuing_wo[p].lock_stats
            assert abs(a.avg_waiters_at_transfer - b.avg_waiters_at_transfer) < 1.0
            assert abs(a.transfers - b.transfers) / a.transfers < 0.1

    def test_drains_cost_almost_nothing(self, suite):
        """§4.2: 'there were almost never any uncompleted shared
        accesses when a lock or unlock was done' -- so the deep
        cache-bus buffers are questionable.  Consequential form: the
        stall time spent draining at sync points is a negligible
        fraction of run-time, and most drains find at most one buffered
        access (never a deep buffer)."""
        for p in suite.programs():
            r = suite.queuing_wo[p]
            drain = sum(m.stall_drain for m in r.proc_metrics)
            total = sum(m.completion_time for m in r.proc_metrics)
            assert drain / total < 0.01, (p, drain / total)
        # and across the suite, a majority-ish of sync points drain an
        # already-empty buffer
        totals = nonempty = 0
        for p in suite.programs():
            meta = suite.queuing_wo[p].meta
            totals += meta["drains"]
            nonempty += meta["drains_nonempty"]
        assert nonempty / totals < 0.7

    def test_write_hit_ratios_high(self, suite):
        """Table 7: write-hit ratios 90-99% explain why bypassing buys
        so little."""
        for p in suite.programs():
            assert suite.queuing_wo[p].write_hit_ratio > 0.85, p


class TestScaleStability:
    def test_conclusions_stable_at_half_scale(self):
        """'Grav and Qsort have been simulated with significantly longer
        traces with no change in the basic results' -- our analog, run
        downward: the shape holds at half scale too."""
        suite = run_suite(
            programs=["grav", "qsort"],
            scale=0.5,
            configs=(("queuing", "sc"), ("ttas", "sc")),
        )
        g = suite.queuing_sc["grav"]
        assert g.avg_utilization < 0.55
        assert g.stall_pct_lock > 85
        assert g.lock_stats.avg_waiters_at_transfer > 3.5
        q = suite.queuing_sc["qsort"]
        assert q.stall_pct_miss > 90
        slow = (suite.ttas_sc["grav"].run_time - g.run_time) / g.run_time
        assert slow > 0.02
