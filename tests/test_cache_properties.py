"""Property-based tests for the cache against a reference model.

The reference model is an order-preserving per-set list with the same
declared policy (2-way LRU); the property is that the fast
implementation agrees with it on every probe after arbitrary operation
sequences, and that structural invariants always hold.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.cache import EXCLUSIVE, INVALID, MODIFIED, SHARED, Cache
from repro.machine.config import CacheConfig

CFG = CacheConfig(size_bytes=256, line_bytes=16, assoc=2)  # 8 sets
LINES = st.integers(0, 31)
STATES = st.sampled_from([SHARED, EXCLUSIVE, MODIFIED])

ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("lookup"), LINES),
        st.tuples(st.just("install"), LINES, STATES),
        st.tuples(st.just("snoop_read"), LINES),
        st.tuples(st.just("snoop_invalidate"), LINES),
    ),
    max_size=80,
)


class RefCache:
    """Straight-line reference implementation: per-set MRU list."""

    def __init__(self, n_sets, assoc):
        self.n_sets = n_sets
        self.assoc = assoc
        self.sets = [[] for _ in range(n_sets)]  # list of [line, state]

    def _find(self, line):
        for ent in self.sets[line % self.n_sets]:
            if ent[0] == line:
                return ent
        return None

    def lookup(self, line):
        ent = self._find(line)
        if not ent:
            return INVALID
        s = self.sets[line % self.n_sets]
        s.remove(ent)
        s.insert(0, ent)
        return ent[1]

    def install(self, line, state):
        ent = self._find(line)
        s = self.sets[line % self.n_sets]
        if ent:
            ent[1] = state
            s.remove(ent)
            s.insert(0, ent)
            return None
        victim = None
        if len(s) >= self.assoc:
            vline, vstate = s.pop()
            victim = (vline, vstate == MODIFIED)
        s.insert(0, [line, state])
        return victim

    def snoop_read(self, line):
        ent = self._find(line)
        if not ent:
            return (False, False)
        dirty = ent[1] == MODIFIED
        ent[1] = SHARED
        return (True, dirty)

    def snoop_invalidate(self, line):
        ent = self._find(line)
        if not ent:
            return (False, False)
        self.sets[line % self.n_sets].remove(ent)
        return (True, ent[1] == MODIFIED)

    def probe(self, line):
        ent = self._find(line)
        return ent[1] if ent else INVALID


class TestCacheAgainstReference:
    @given(ops_strategy)
    @settings(max_examples=150, deadline=None)
    def test_agrees_with_reference_model(self, ops):
        fast = Cache(CFG)
        ref = RefCache(CFG.n_sets, CFG.assoc)
        for op in ops:
            name = op[0]
            if name == "install":
                assert fast.install(op[1], op[2]) == ref.install(op[1], op[2])
            else:
                assert getattr(fast, name)(op[1]) == getattr(ref, name)(op[1])
            fast.check_invariants()
        for line in range(32):
            assert fast.probe(line) == ref.probe(line)

    @given(ops_strategy)
    @settings(max_examples=80, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, ops):
        fast = Cache(CFG)
        for op in ops:
            if op[0] == "install":
                fast.install(op[1], op[2])
            else:
                getattr(fast, op[0])(op[1])
            assert fast.occupancy() <= CFG.n_lines
            for lst in fast.sets:
                assert len(lst) <= CFG.assoc

    @given(st.lists(LINES, min_size=1, max_size=40))
    @settings(max_examples=80, deadline=None)
    def test_install_then_lookup_hits(self, lines):
        """Temporal locality: the most recently installed line of each
        set must always be resident."""
        fast = Cache(CFG)
        for line in lines:
            fast.install(line, EXCLUSIVE)
            assert fast.probe(line) != INVALID
