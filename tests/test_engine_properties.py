"""Property-based tests of the event-engine scheduling contract.

Every law is checked against BOTH implementations -- the production
bucketed :class:`Engine` and the reference :class:`HeapEngine` -- since
the bucketed engine's whole claim is that it is observationally
identical to the heap encoding.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.machine.engine import Engine, HeapEngine


def EngineRefDispatch():
    """Engine with the contended-path fast dispatch loop disabled, so
    the unguarded ``run()`` takes the committed-baseline index-walk
    path (what ``bus_fast_path=False`` restores)."""
    e = Engine()
    e.fast_dispatch = False
    return e


ENGINES = [Engine, EngineRefDispatch, HeapEngine]

# (delay, tag) pairs: schedule events at now + delay, then check dispatch order
schedules = st.lists(
    st.tuples(st.integers(0, 30), st.integers(0, 10**6)),
    min_size=1,
    max_size=60,
)


@pytest.mark.parametrize("factory", ENGINES)
class TestSchedulingLaws:
    @given(sched=schedules)
    @settings(max_examples=150, deadline=None)
    def test_dispatch_is_stable_time_order(self, factory, sched):
        """Events fire sorted by time; ties fire in scheduling order."""
        e = factory()
        log = []
        for delay, tag in sched:
            e.at(delay, lambda t, d=delay, g=tag: log.append((d, g)))
        n = e.run()
        assert n == len(sched)
        # stable sort of the schedule by time == observed dispatch order
        assert log == sorted(sched, key=lambda p: p[0])

    @given(sched=schedules, until=st.integers(0, 40))
    @settings(max_examples=150, deadline=None)
    def test_run_until_never_passes_until(self, factory, sched, until):
        """run(until) dispatches exactly the events at times <= until and
        leaves the clock there; the rest stay pending."""
        e = factory()
        log = []
        for delay, tag in sched:
            e.at(delay, lambda t, d=delay: log.append(d))
        e.run(until=until)
        assert all(t <= until for t in log)
        assert e.now <= until
        assert len(log) == sum(1 for d, _ in sched if d <= until)
        assert e.pending() == len(sched) - len(log)
        # the remainder is still dispatchable, in order
        e.run()
        assert log == sorted(d for d, _ in sched)

    @given(sched=schedules)
    @settings(max_examples=100, deadline=None)
    def test_events_scheduled_during_dispatch_fire(self, factory, sched):
        """A callback may schedule further events -- including for the
        cycle being dispatched -- and they fire in (time, scheduling)
        order like any other event."""
        e = factory()
        log = []

        def spawn(t, delay):
            log.append(("parent", t, t))
            e.at(t + delay, lambda t2, t0=t: log.append(("child", t2, t0)))

        for delay, tag in sched:
            e.at(delay, lambda t, d=delay: spawn(t, d % 3))
        e.run()
        assert len(log) == 2 * len(sched)
        times = [t for _, t, _ in log]
        assert times == sorted(times)
        # every child fired at parent time + its (0-2 cycle) delay
        for kind, t, t0 in log:
            if kind == "child":
                assert 0 <= t - t0 <= 2

    @given(st.integers(1, 50))
    @settings(max_examples=30, deadline=None)
    def test_at_rejects_past_times(self, factory, now):
        e = factory()
        e.at(now, lambda t: None)
        e.run()
        assert e.now == now
        with pytest.raises(ValueError):
            e.at(now - 1, lambda t: None)

    @given(
        time=st.one_of(
            st.floats(allow_nan=False, allow_infinity=False),
            st.text(max_size=3),
            st.just(7.0),
            st.just(None),
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_at_rejects_non_integral_times(self, factory, time):
        """Satellite regression: ``at`` used to accept floats, making
        cycle arithmetic silently inexact; now any non-integral time is
        a TypeError, including whole-valued floats like 7.0."""
        e = factory()
        with pytest.raises(TypeError):
            e.at(time, lambda t: None)

    def test_at_normalizes_indexable_integrals(self, factory):
        import numpy as np

        e = factory()
        log = []
        e.at(np.int64(4), lambda t: log.append(t))
        e.run()
        assert log == [4]
        assert type(e.now) is int

    def test_run_is_not_reentrant(self, factory):
        e = factory()
        boom = []

        def reenter(t):
            try:
                e.run()
            except RuntimeError as exc:
                boom.append(str(exc))

        e.at(1, reenter)
        e.run()
        assert boom and "reentrant" in boom[0]

    @given(sched=schedules, cap=st.integers(1, 20))
    @settings(max_examples=60, deadline=None)
    def test_max_events_caps_dispatch_count(self, factory, sched, cap):
        e = factory()
        fired = []
        for delay, tag in sched:
            e.at(delay, lambda t: fired.append(t))
        if cap > len(sched):
            assert e.run(max_events=cap) == len(sched)
        else:
            # the guard trips as soon as the cap-th event dispatches
            with pytest.raises(RuntimeError):
                e.run(max_events=cap)
            assert len(fired) == cap
            # the engine remains usable: the tail still drains in order
            e.run()
            assert len(fired) == len(sched)
            assert fired == sorted(d for d, _ in sched)


@pytest.mark.parametrize("factory", ENGINES)
def test_float_time_rejected_even_when_whole(factory):
    """The exact regression: 7.0 == 7 but must not enter the queue."""
    e = factory()
    with pytest.raises(TypeError):
        e.at(7.0, lambda t: None)
    with pytest.raises(TypeError):
        e.after(3.5, lambda t: None)
    assert e.pending() == 0


@given(sched=schedules, until=st.integers(0, 40), cap=st.integers(1, 100))
@settings(max_examples=150, deadline=None)
def test_engines_agree_event_for_event(sched, until, cap):
    """Differential law: for any schedule and any run() bounds, all the
    implementations dispatch identical event sequences and agree on
    now/pending/dispatch-count."""
    logs = {}
    engines = {}
    for factory in ENGINES:
        e = factory()
        log = []
        for delay, tag in sched:
            e.at(delay, lambda t, d=delay, g=tag: log.append((d, g)))
        try:
            n = e.run(until=until, max_events=cap)
        except RuntimeError:
            n = "overflow"
        logs[factory] = (log, n, e.now, e.pending())
        engines[factory] = e
    assert logs[Engine] == logs[HeapEngine]
    assert logs[Engine] == logs[EngineRefDispatch]


# one randomized bus-shaped transaction: at `start`, a grant chain runs
# grant -> (hold cycles) -> fire, and fire schedules its completion and
# release *in the same cycle* -- release immediately re-granting the
# next transaction of the chain, exactly the cascade the bus fast path
# collapses.  `extra` children are same-cycle completions fanning out
# of the fire (fused completions dispatch several callbacks at one
# timestamp).
transactions = st.lists(
    st.tuples(
        st.integers(0, 20),  # start
        st.integers(1, 4),  # hold
        st.integers(1, 4),  # chain length
        st.integers(0, 3),  # same-cycle completion fan-out
    ),
    min_size=1,
    max_size=12,
)


@given(txns=transactions)
@settings(max_examples=150, deadline=None)
def test_chained_same_cycle_patterns_agree(txns):
    """The bus fast path's event shape -- grant/fire chains whose
    completion, release and re-grant all land in the *current* cycle,
    plus same-cycle completion fan-out -- dispatches identically on the
    fast dispatch loop, the reference index walk, and the heap
    encoding.  This is the schedule-during-dispatch pattern the fused
    transaction path leans on hardest."""
    logs = {}
    for factory in ENGINES:
        e = factory()
        log = []

        def fire(t, hold, left, extra, tid):
            log.append(("fire", t, tid, left))
            for k in range(extra):  # same-cycle completion fan-out
                e.at(t, lambda t2, g=(tid, left, k): log.append(("done", t2, g)))
            # same-cycle release -> next grant of the chain
            if left:
                e.at(
                    t,
                    lambda t2, h=hold, l=left - 1, x=extra, g=tid: e.at(
                        t2 + h, lambda t3: fire(t3, h, l, x, g)
                    ),
                )

        for tid, (start, hold, chain, extra) in enumerate(txns):
            e.at(start, lambda t, h=hold, c=chain, x=extra, g=tid: fire(t, h, c - 1, x, g))
        e.run()
        assert e.pending() == 0
        logs[factory] = log
    assert logs[Engine] == logs[HeapEngine]
    assert logs[Engine] == logs[EngineRefDispatch]
