"""System-level machine tests: split-transaction overlap, weak-ordering
bypass order on the bus, memory backpressure, arbitration fairness."""

import pytest

from repro.consistency import SEQUENTIAL, WEAK
from repro.machine.buffers import OP_NAMES, READ_MISS, RFO
from repro.machine.config import MachineConfig, MemoryConfig
from repro.machine.system import System
from repro.sync import QueuingLockManager
from tests.conftest import make_traceset, tiny_machine


@pytest.fixture(autouse=True)
def _audited(audit_everything):
    """Every simulation in this module runs under the invariant auditor
    (repro.audit): protocol bugs fail at the violating cycle instead of
    as downstream metric drift."""
    yield


class OpLog:
    """Wraps a System's bus service execute() to log grant order."""

    def __init__(self, system):
        self.events = []
        orig = system.execute

        def execute(op, time):
            self.events.append((time, OP_NAMES[op.kind], op.proc, op.line))
            return orig(op, time)

        system.execute = execute


def build_system(build_fns, model=SEQUENTIAL, config=None):
    ts = make_traceset(build_fns)
    config = config or tiny_machine(n_procs=ts.n_procs)
    return System(ts, config, QueuingLockManager(), model)


class TestSplitTransactionOverlap:
    def test_two_misses_overlap_in_memory_pipeline(self):
        """With a split-transaction bus two processors' misses complete
        faster than strict serialization of 6-cycle misses."""

        def reader(off):
            def fn(b, layout):
                sh = layout.alloc_shared(4096)
                for i in range(8):
                    b.read(sh + off + i * 256)

            return fn

        system = build_system([reader(0), reader(64)])
        result = system.run()
        # 16 misses, 6 cycles each: strict serialization would be >= 96
        # cycles of pure stall on ONE processor's critical path; with
        # overlap each processor stalls for its own 8 misses plus queueing
        for m in result.proc_metrics:
            assert m.stall_miss < 8 * 12

    def test_exact_single_miss_latency(self):
        def fn(b, layout):
            b.read(layout.alloc_shared(16))

        system = build_system([fn])
        result = system.run()
        assert result.proc_metrics[0].stall_miss == 6


class TestWeakOrderingBypassOnBus:
    def test_load_granted_before_earlier_buffered_writes(self):
        """Under WO a read miss jumps the buffered write misses: its bus
        grant must precede theirs."""

        def fn(b, layout):
            sh = layout.alloc_shared(65536)
            b.write(sh)  # buffered RFO
            b.write(sh + 4096)  # buffered RFO
            b.read(sh + 8192)  # must bypass to the front

        system = build_system([fn], model=WEAK)
        log = OpLog(system)
        system.run()
        reads = [e for e in log.events if e[1] == "READ_MISS"]
        rfos = [e for e in log.events if e[1] == "RFO"]
        assert reads and len(rfos) == 2
        # the load's grant time beats at least one buffered write's
        assert reads[0][0] < max(e[0] for e in rfos)

    def test_sc_keeps_program_order(self):
        def fn(b, layout):
            sh = layout.alloc_shared(65536)
            b.write(sh)
            b.read(sh + 4096)

        system = build_system([fn], model=SEQUENTIAL)
        log = OpLog(system)
        system.run()
        data_ops = [e for e in log.events if e[1] in ("RFO", "READ_MISS")]
        assert [e[1] for e in data_ops] == ["RFO", "READ_MISS"]


class TestMemoryBackpressure:
    def test_tiny_memory_buffers_still_complete(self):
        """Input/output buffers of depth 1 force the arbiter to skip
        memory-bound ops; everything must still finish, just slower."""

        def fn(b, layout):
            sh = layout.alloc_shared(16384)
            for i in range(24):
                b.read(sh + i * 256)

        small = MemoryConfig(access_cycles=3, input_buffer=1, output_buffer=1)
        fast = build_system([fn, fn, fn])
        r_fast = fast.run()
        from dataclasses import replace

        cfg = replace(tiny_machine(n_procs=3), memory=small)
        slow = build_system([fn, fn, fn], config=cfg)
        r_slow = slow.run()
        assert r_slow.run_time >= r_fast.run_time
        assert r_slow.meta["memory_reads"] == r_fast.meta["memory_reads"]

    def test_slow_memory_stretches_misses(self):
        def fn(b, layout):
            sh = layout.alloc_shared(4096)
            for i in range(8):
                b.read(sh + i * 256)

        from dataclasses import replace

        base = build_system([fn]).run()
        cfg = replace(tiny_machine(n_procs=1), memory=MemoryConfig(access_cycles=30))
        slow = build_system([fn], config=cfg).run()
        # 8 misses x (30-3) extra cycles
        assert slow.run_time - base.run_time == 8 * 27


class TestArbitrationFairness:
    def test_all_processors_progress_under_saturation(self):
        """Round-robin: with every processor streaming misses, stall
        totals stay within a reasonable band of each other."""

        def streamer(seed):
            def fn(b, layout):
                sh = layout.alloc_shared(1 << 20)
                for i in range(64):
                    b.read(sh + ((i * 2654435761 + seed * 97) % (1 << 18)))

            return fn

        system = build_system([streamer(s) for s in range(4)])
        result = system.run()
        stalls = [m.stall_miss for m in result.proc_metrics]
        assert max(stalls) < 2.5 * max(1, min(stalls))

    def test_bus_utilization_saturates_not_exceeds(self):
        def fn(b, layout):
            sh = layout.alloc_shared(1 << 20)
            for i in range(128):
                b.read(sh + i * 4096)

        result = build_system([fn] * 4).run()
        assert 0.3 < result.bus_utilization <= 1.0
