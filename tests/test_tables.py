"""Tests for the per-table entry points (repro.core.tables)."""

import pytest

from repro.core import tables
from repro.core.experiment import run_suite

SMALL = 0.05


class TestFigure1:
    def test_returns_text_and_config(self):
        text, cfg = tables.figure1()
        assert "Model Architecture" in text
        assert cfg.n_procs == 12


class TestIdealTables:
    def test_table1_rows_in_order(self):
        text, ideals = tables.table1(scale=SMALL)
        assert [i.program for i in ideals] == [
            "grav",
            "pdsa",
            "fullconn",
            "pverify",
            "qsort",
            "topopt",
        ]
        assert "Table 1" in text

    def test_table2(self):
        text, ideals = tables.table2(scale=SMALL)
        assert "Lock Pairs" in text
        assert ideals[-1].lock_pairs == 0  # topopt


class TestSimulationTables:
    @pytest.fixture(scope="class")
    def suite(self):
        return run_suite(scale=SMALL)

    def test_table3_uses_queuing_sc(self, suite):
        text, rows = tables.table3(suite=suite)
        assert len(rows) == 6
        assert all(r.lock_scheme == "queuing" and r.consistency == "sc" for r in rows)
        assert "Queuing" in text

    def test_table4_excludes_topopt(self, suite):
        _, rows = tables.table4(suite=suite)
        assert [r.program for r in rows] == [
            "grav",
            "pdsa",
            "fullconn",
            "pverify",
            "qsort",
        ]

    def test_table5_and_6_use_ttas(self, suite):
        _, rows5 = tables.table5(suite=suite)
        _, rows6 = tables.table6(suite=suite)
        assert all(r.lock_scheme == "ttas" for r in rows5)
        assert all(r.lock_scheme == "ttas" for r in rows6)

    def test_table7_pairs_sc_and_wo(self, suite):
        text, (sc, wo) = tables.table7(suite=suite)
        assert len(sc) == len(wo) == 6
        assert all(r.consistency == "sc" for r in sc)
        assert all(r.consistency == "wo" for r in wo)
        assert "Difference" in text

    def test_table8_uses_wo(self, suite):
        _, rows = tables.table8(suite=suite)
        assert all(r.consistency == "wo" for r in rows)

    def test_section32_decomposes_contended_pair(self, suite):
        text, decomps = tables.section32(suite=suite)
        assert [d.program for d in decomps] == ["grav", "pdsa"]
        assert "decomposition" in text


class TestRenderAny:
    def test_valid_numbers(self):
        text = tables.render_any(1, scale=SMALL)
        assert "Table 1" in text

    def test_invalid_number_rejected(self):
        with pytest.raises(ValueError, match="tables 1-8"):
            tables.render_any(9)
