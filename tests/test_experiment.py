"""Tests for the experiment driver and suite runner."""

import pytest

from repro.core.experiment import Experiment, SuiteResults, run_experiment, run_suite
from repro.machine.config import MachineConfig
from repro.workloads import generate_trace


class TestExperiment:
    def test_needs_program_or_traceset(self):
        with pytest.raises(ValueError, match="traceset or a program"):
            Experiment().run()

    def test_generates_and_caches_trace(self):
        exp = Experiment(program="fullconn", scale=0.05)
        ts1 = exp.trace()
        ts2 = exp.trace()
        assert ts1 is ts2

    def test_run_returns_result_with_config_stamp(self):
        r = run_experiment("fullconn", lock_scheme="ttas", consistency="wo", scale=0.05)
        assert r.program == "fullconn"
        assert r.lock_scheme == "ttas"
        assert r.consistency == "wo"
        assert r.run_time > 0

    def test_explicit_traceset_reused(self):
        ts = generate_trace("pverify", scale=0.05)
        r1 = run_experiment("", traceset=ts)
        r2 = run_experiment("", traceset=ts, lock_scheme="ttas")
        assert r1.n_procs == r2.n_procs == ts.n_procs

    def test_trace_is_not_mutated_by_simulation(self):
        import numpy as np

        ts = generate_trace("fullconn", scale=0.05)
        before = [t.records.copy() for t in ts]
        run_experiment("", traceset=ts)
        run_experiment("", traceset=ts, consistency="wo")
        for orig, t in zip(before, ts):
            assert np.array_equal(orig, t.records)

    def test_same_traceset_two_runs_identical(self):
        ts = generate_trace("pverify", scale=0.05)
        r1 = run_experiment("", traceset=ts)
        r2 = run_experiment("", traceset=ts)
        assert r1.run_time == r2.run_time
        assert r1.lock_stats == r2.lock_stats

    def test_custom_machine_config(self):
        cfg = MachineConfig(n_procs=12, cachebus_buffer_depth=1)
        r = run_experiment("fullconn", scale=0.05, machine=cfg)
        assert r.buffer_max_occupancy >= 1

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="unknown lock scheme"):
            run_experiment("fullconn", lock_scheme="magic", scale=0.05)

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError, match="unknown consistency"):
            run_experiment("fullconn", consistency="rc", scale=0.05)


class TestSuite:
    @pytest.fixture(scope="class")
    def small_suite(self):
        return run_suite(programs=["fullconn", "pverify"], scale=0.05)

    def test_all_three_configs_populated(self, small_suite):
        for bucket in (
            small_suite.queuing_sc,
            small_suite.ttas_sc,
            small_suite.queuing_wo,
        ):
            assert set(bucket) == {"fullconn", "pverify"}

    def test_traces_shared_across_configs(self, small_suite):
        assert set(small_suite.traces) == {"fullconn", "pverify"}

    def test_programs_in_table_order(self, small_suite):
        assert small_suite.programs() == ["fullconn", "pverify"]

    def test_result_configs_stamped(self, small_suite):
        assert small_suite.ttas_sc["fullconn"].lock_scheme == "ttas"
        assert small_suite.queuing_wo["pverify"].consistency == "wo"

    def test_partial_config_selection(self):
        s = run_suite(programs=["fullconn"], scale=0.05, configs=(("queuing", "sc"),))
        assert s.queuing_sc
        assert not s.ttas_sc
        assert not s.queuing_wo
