"""Property-based tests for the lock managers on the mock machine.

Random interleavings of acquire/release requests from several processors
are driven through each scheme; the properties:

* safety: at most one owner at any time, and ownership only changes
  hand at releases (checked via the manager's own invariants plus an
  ownership log);
* liveness: every requested acquisition is eventually granted and every
  processor finishes its script;
* accounting: grants == acquisitions stat; transfers <= acquisitions;
  per-lock acquisition counts sum to the total.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sync.exact_queuing import ExactQueuingLockManager
from repro.sync.queuing import QueuingLockManager
from repro.sync.tas import TestAndSetLockManager
from repro.sync.ttas import TestAndTestAndSetLockManager
from tests.mock_machine import MockMachine

LINE = 0x2000_0000 >> 4

schemes = st.sampled_from(
    [
        QueuingLockManager,
        ExactQueuingLockManager,
        TestAndTestAndSetLockManager,
        TestAndSetLockManager,
    ]
)

#: per-processor scripts: a list of (start_delay, hold_cycles) critical
#: sections on one shared lock
scripts = st.lists(
    st.lists(
        st.tuples(st.integers(0, 120), st.integers(1, 80)),
        min_size=1,
        max_size=4,
    ),
    min_size=1,
    max_size=5,
)


class Driver:
    """Runs one processor's script of critical sections."""

    def __init__(self, machine, mgr, proc, script, log):
        self.machine = machine
        self.mgr = mgr
        self.proc = proc
        self.script = list(script)
        self.log = log
        self.done = False

    def start(self):
        self._next(0)

    def _next(self, t):
        if not self.script:
            self.done = True
            return
        delay, hold = self.script.pop(0)
        self.machine.at(
            t + delay, lambda t2: self.mgr.acquire(self.proc, 1, LINE, t2, self._got(hold))
        )

    def _got(self, hold):
        def granted(t, contended):
            self.log.append(("acq", self.proc, t))

            def do_release(t2):
                # the critical section ends at the release *call*; the
                # release's own bus traffic completes later
                self.log.append(("rel", self.proc, t2))
                self.mgr.release(self.proc, 1, LINE, t2, self._released)

            self.machine.at(t + hold, do_release)

        return granted

    def _released(self, t, contended):
        self._next(t)


class TestLockManagerProperties:
    @given(schemes, scripts)
    @settings(max_examples=80, deadline=None)
    def test_safety_and_liveness(self, scheme_cls, procs_scripts):
        m = MockMachine()
        mgr = scheme_cls()
        m.attach_manager(mgr)
        log = []
        drivers = [
            Driver(m, mgr, p, script, log) for p, script in enumerate(procs_scripts)
        ]
        for d in drivers:
            d.start()
        m.run()

        # liveness: everyone finished every critical section
        assert all(d.done for d in drivers)
        total_cs = sum(len(s) for s in procs_scripts)
        acquires = [e for e in log if e[0] == "acq"]
        releases = [e for e in log if e[0] == "rel"]
        assert len(acquires) == len(releases) == total_cs

        # safety: acquire/release events alternate per the lock -- no
        # acquire while another processor holds it
        holder = None
        for kind, proc, t in sorted(log, key=lambda e: (e[2], e[0] == "acq")):
            if kind == "acq":
                assert holder is None, f"proc {proc} acquired while {holder} held"
                holder = proc
            else:
                assert holder == proc
                holder = None
        assert holder is None
        mgr.check_invariants()

    @given(schemes, scripts)
    @settings(max_examples=50, deadline=None)
    def test_statistics_identities(self, scheme_cls, procs_scripts):
        m = MockMachine()
        mgr = scheme_cls()
        m.attach_manager(mgr)
        log = []
        drivers = [
            Driver(m, mgr, p, script, log) for p, script in enumerate(procs_scripts)
        ]
        for d in drivers:
            d.start()
        m.run()
        s = mgr.stats.snapshot()
        total_cs = sum(len(x) for x in procs_scripts)
        assert s.acquisitions == total_cs
        assert s.transfers <= s.acquisitions
        assert sum(s.per_lock_acquisitions.values()) == total_cs
        assert sum(s.per_lock_transfers.values()) == s.transfers
        assert s.hold_cycles_total >= 0
        if s.transfers:
            assert s.avg_waiters_at_transfer >= 0
            assert s.avg_handoff >= 0
