"""Unit tests for the event engine."""

import pytest

from repro.machine.engine import Engine


class TestScheduling:
    def test_events_fire_in_time_order(self):
        e = Engine()
        log = []
        e.at(5, lambda t: log.append(("b", t)))
        e.at(2, lambda t: log.append(("a", t)))
        e.at(9, lambda t: log.append(("c", t)))
        e.run()
        assert log == [("a", 2), ("b", 5), ("c", 9)]

    def test_same_cycle_events_fire_in_scheduling_order(self):
        e = Engine()
        log = []
        for name in "abcd":
            e.at(3, lambda t, n=name: log.append(n))
        e.run()
        assert log == list("abcd")

    def test_now_tracks_dispatch_time(self):
        e = Engine()
        seen = []
        e.at(4, lambda t: seen.append(e.now))
        e.run()
        assert seen == [4]

    def test_events_scheduled_from_events(self):
        e = Engine()
        log = []

        def first(t):
            log.append(t)
            e.at(t + 10, lambda t2: log.append(t2))

        e.at(1, first)
        e.run()
        assert log == [1, 11]

    def test_after_is_relative(self):
        e = Engine()
        log = []
        e.at(7, lambda t: e.after(3, lambda t2: log.append(t2)))
        e.run()
        assert log == [10]

    def test_past_event_rejected(self):
        e = Engine()
        e.at(10, lambda t: None)
        e.run()
        with pytest.raises(ValueError, match="past"):
            e.at(5, lambda t: None)

    def test_run_returns_dispatch_count(self):
        e = Engine()
        for i in range(5):
            e.at(i, lambda t: None)
        assert e.run() == 5

    def test_until_bound(self):
        e = Engine()
        log = []
        e.at(1, lambda t: log.append(t))
        e.at(100, lambda t: log.append(t))
        e.run(until=50)
        assert log == [1]
        assert e.pending() == 1

    def test_max_events_guard(self):
        e = Engine()

        def loop(t):
            e.at(t + 1, loop)

        e.at(0, loop)
        with pytest.raises(RuntimeError, match="exceeded"):
            e.run(max_events=100)

    def test_not_reentrant(self):
        e = Engine()

        def bad(t):
            e.run()

        e.at(0, bad)
        with pytest.raises(RuntimeError, match="reentrant"):
            e.run()

    def test_empty_run_is_noop(self):
        e = Engine()
        assert e.run() == 0
        assert e.now == 0
