"""Mutation coverage for the segment-kernel auditor.

Each KERNEL fault (:data:`repro.audit.faults.KERNEL_FAULTS`) corrupts
one leg of the columnar segment kernel's legality argument -- the span
analysis, the machine-quiet scan, or the per-processor quiet predicate
-- and the kernel auditor's independent re-derivation must catch the
first illegal collapse with the right check.  Unlike the protocol faults
(tests/test_audit_faults.py), which trip on any contended workload,
each kernel fault needs a purpose-built traceset: a machine-quiet
private phase for the kernel to collapse, plus the specific hazard the
corrupted detector ignores.
"""

import json
from dataclasses import replace

import pytest

from repro.audit import AuditError, SystemAuditor
from repro.audit.faults import KERNEL_FAULTS, inject
from repro.audit.report import KERNEL
from repro.consistency import SEQUENTIAL, WEAK
from repro.machine.config import MachineConfig
from repro.machine.system import System
from repro.runner.serialize import result_to_dict
from repro.sync import QueuingLockManager

from .conftest import make_traceset

pytestmark = pytest.mark.audit


# -- crafted per-processor programs ----------------------------------------


def _hot_private(b, layout):
    """A private hit loop punctuated by uncontended locks.  The sync
    records bound every static window, so one (legal) collapse can never
    consume the whole trace: the kernel keeps re-attempting, and every
    attempt is a chance for a corrupted detector to collapse over live
    machine state.  Runs are long enough (71 records) to fill whole
    interpreter bounces at the default batch and to clear the unfaulted
    kernel's entry gate (the clean controls)."""
    code = layout.alloc_code(64)
    base = layout.alloc_private(b.proc, 8 * 16)
    lock = layout.alloc_lock()
    for j in range(8):  # warm the working set: all later reads are hits
        b.read(base + 16 * j)
    for _ in range(12):
        b.block(2, 2, code)
        for j in range(70):
            b.read(base + 16 * (j % 8))
        b.lock(b.proc, lock)
        b.unlock(b.proc, lock)


def _cold_then_hot(b, layout):
    """Plain private reads, every line cold on its first touch: a span
    analyzer that overruns by one collapses a miss as a silent hit."""
    code = layout.alloc_code(64)
    base = layout.alloc_private(b.proc, 8 * 16)
    for _ in range(30):
        b.block(2, 2, code)
        for j in range(8):
            b.read(base + 16 * j)


def _hot_with_one_cold_read(b, layout):
    """Bounce-aligned hot iterations (8 records each, starting with an
    instruction block) with a single cold read of a line touched exactly
    once, placed as the *last* record of its bounce and past the
    kernel's post-rejection backoff (record 575 > 512).  An analyzer
    that overruns by one swallows exactly that read: the line is never
    fetched and never touched again, so its miss simply vanishes from
    the metrics."""
    code = layout.alloc_code(64)
    base = layout.alloc_private(b.proc, 7 * 16)
    once = layout.alloc_private(b.proc, 16)
    for j in range(7):  # warm-up, padded to one whole 8-record bounce
        b.read(base + 16 * j)
    b.read(base)
    for it in range(80):
        b.block(2, 2, code)
        for j in range(6):
            b.read(base + 16 * (j % 7))
        b.read(once if it == 70 else base)


def _bus_storm(b, layout):
    """Back-to-back cold shared writes: the bus is mid-transaction (and
    this processor blocked on it) nearly every cycle of the run."""
    code = layout.alloc_code(64)
    shared = layout.alloc_shared(256 * 16)
    for j in range(256):
        b.block(1, 1, code)
        b.write(shared + 16 * j)


def _wo_staller(b, layout):
    """Weak ordering: long instruction blocks march this processor's
    local clock far ahead of the engine, then buffered shared writes
    issue at that future local time.  Until each deferred push fires the
    write counts as ``outstanding`` but sits in no buffer and holds no
    bus transaction -- only the per-processor quiet predicate sees it."""
    code = layout.alloc_code(64)
    shared = layout.alloc_shared(32 * 16)
    b.block(8, 400, code)
    for j in range(32):
        b.write(shared + 16 * j)
        b.block(4, 50, code)


def _case(name):
    """(traceset, config, model) that drives ``name``'s corrupted path."""
    if name == "kernel-overrun":
        ts = make_traceset([_cold_then_hot], program="kern-overrun")
        cfg = MachineConfig(n_procs=1, batch_records=1)
        model = SEQUENTIAL
    elif name == "kernel-phantom-quiet":
        ts = make_traceset([_hot_private, _bus_storm], program="kern-phantom")
        cfg = MachineConfig(n_procs=2, batch_records=1)
        model = SEQUENTIAL
    elif name == "kernel-stale-drain":
        # the issued-but-not-yet-buffered window only exists on the
        # reference issue path (per-issue closures at the processor's
        # local time); multi-record bounces let that local time run ahead
        ts = make_traceset([_hot_private, _wo_staller], program="kern-stale")
        cfg = MachineConfig(n_procs=2, batch_records=32, bus_fast_path=False)
        model = WEAK
    else:  # pragma: no cover - new fault without a crafted workload
        raise KeyError(name)
    return ts, cfg, model


def _canonical(result):
    return json.loads(json.dumps(result_to_dict(result), sort_keys=True))


# -- the mutation battery ---------------------------------------------------


@pytest.mark.parametrize("name", sorted(KERNEL_FAULTS))
def test_kernel_fault_detected_with_right_category_and_check(name):
    ts, cfg, model = _case(name)
    system = System(ts, cfg, QueuingLockManager(), model)
    SystemAuditor.attach(system, mode="raise")
    spec = inject(system, name)
    with pytest.raises(AuditError) as exc:
        system.run()
    violation = exc.value.violation
    assert violation.category == KERNEL, (
        f"{name}: expected a {KERNEL} violation, got {violation}"
    )
    assert violation.check in spec.checks, (
        f"{name}: check {violation.check!r} not in {sorted(spec.checks)}"
    )


@pytest.mark.parametrize("name", sorted(KERNEL_FAULTS))
def test_same_machine_runs_clean_without_the_fault(name):
    """Control: each crafted workload, unfaulted, runs to completion
    under the same raise-mode auditor with the kernel engaged."""
    ts, cfg, model = _case(name)
    system = System(ts, cfg, QueuingLockManager(), model)
    auditor = SystemAuditor.attach(system, mode="raise")
    system.run()
    assert auditor.report.ok
    assert system.kernel is not None and system.kernel.attempts > 0


def test_overrun_corrupts_results_without_the_auditor():
    """Why the auditor must catch kernel-overrun *at the collapse*: with
    no auditor attached, the same fault silently retires cold misses as
    hits and the run completes with wrong metrics."""
    ts = make_traceset([_hot_with_one_cold_read], program="kern-diverge")
    cfg = MachineConfig(n_procs=1, batch_records=8)
    clean = System(ts, cfg, QueuingLockManager(), SEQUENTIAL).run()
    faulted = System(ts, cfg, QueuingLockManager(), SEQUENTIAL)
    inject(faulted, "kernel-overrun")
    assert _canonical(faulted.run()) != _canonical(clean)


def test_kernel_faults_require_the_kernel():
    # both collapse kernels off: the spin kernel subclasses the segment
    # kernel, so either knob alone still builds an injectable kernel
    ts, cfg, model = _case("kernel-overrun")
    system = System(
        ts,
        replace(cfg, segment_kernel=False, spin_kernel=False),
        QueuingLockManager(),
        model,
    )
    with pytest.raises(RuntimeError):
        inject(system, "kernel-overrun")
