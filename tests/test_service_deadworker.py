"""Dead-worker resilience (PR 10 satellite): a shard stranded by a
worker that dies mid-sweep is re-planned onto the survivors over real
sockets; cells fail only when no worker survives."""

import asyncio

import pytest

from repro.runner import JobSpec, ResultCache
from repro.service import Scheduler, SocketTransport, serve_worker
from repro.service.planner import replan

pytestmark = pytest.mark.service


def _grid(n: int) -> list[JobSpec]:
    return [JobSpec(program="fullconn", scale=0.05, seed=3000 + i) for i in range(n)]


class TestReplan:
    def test_replan_preserves_original_indices(self):
        specs = _grid(5)
        pairs = [(i, specs[i]) for i in (4, 1, 3)]  # stranded subset
        shards = replan(pairs, 2)
        covered = sorted(i for s in shards for i in s.indices)
        assert covered == [1, 3, 4]
        for shard in shards:
            for idx, spec in zip(shard.indices, shard.specs):
                assert specs[idx] is spec

    def test_replan_onto_one_survivor_is_one_shard(self):
        specs = _grid(4)
        shards = replan(list(enumerate(specs)), 1)
        assert len(shards) == 1
        assert shards[0].indices == (0, 1, 2, 3)


class TestKillAWorker:
    def test_grid_survives_a_worker_killed_mid_sweep(self, tmp_path):
        """Integration: two real socket workers, one killed after the
        scheduler connects to it; every cell still completes on the
        survivor and the replan counters tick."""
        specs = _grid(4)

        async def scenario():
            server_a, port_a, agent_a = await serve_worker(
                cache=ResultCache(tmp_path / "a"), trace_cache=False, name="wa"
            )
            server_b, port_b, agent_b = await serve_worker(
                cache=ResultCache(tmp_path / "b"), trace_cache=False, name="wb"
            )
            ta = SocketTransport("127.0.0.1", port_a)
            tb = SocketTransport("127.0.0.1", port_b)
            scheduler = Scheduler(
                cache=ResultCache(tmp_path / "front"),
                trace_cache=False,
                transports=[ta, tb],
            )
            try:
                # both workers are up and answering
                assert (await ta.call({"op": "ping"}))["ok"]
                assert (await tb.call({"op": "ping"}))["ok"]
                # kill worker A: close its server AND its accepted
                # connections die with the event-loop abort below
                server_a.close()
                await server_a.wait_closed()
                await ta.close()  # drop the live connection too
                outs = await scheduler.submit_grid(specs, n_shards=2)
                return outs, scheduler.metrics
            finally:
                await ta.close()
                await tb.close()
                server_b.close()
                await server_b.wait_closed()
                agent_a.close()
                agent_b.close()

        outs, metrics = asyncio.run(scenario())
        assert all(o.ok for o in outs)
        assert [o.status for o in outs] == ["ok"] * 4
        # outcomes landed in original grid order with real results
        for spec, out in zip(specs, outs):
            assert out.spec is spec
            assert out.outcome.run_time > 0
        assert metrics.worker_failures >= 1
        assert metrics.shards_replanned >= 1
        assert metrics.executed == 4
        assert metrics.failed == 0

    def test_all_workers_dead_fails_cells_with_context(self, tmp_path):
        specs = _grid(2)

        async def scenario():
            # a port with nothing listening: connection refused
            dead = SocketTransport("127.0.0.1", 1)
            scheduler = Scheduler(
                cache=ResultCache(tmp_path / "front"),
                trace_cache=False,
                transports=[dead],
            )
            outs = await scheduler.submit_grid(specs)
            await dead.close()
            return outs, scheduler.metrics

        outs, metrics = asyncio.run(scenario())
        assert all(not o.ok for o in outs)
        for out in outs:
            assert out.status == "failed"
            assert "no surviving workers" in out.outcome.message
        assert metrics.worker_failures == 1
        assert metrics.failed == 2

    def test_single_cell_grid_replans_too(self, tmp_path):
        (spec,) = _grid(1)

        async def scenario():
            server, port, agent = await serve_worker(
                cache=ResultCache(tmp_path / "b"), trace_cache=False
            )
            dead = SocketTransport("127.0.0.1", 1)
            good = SocketTransport("127.0.0.1", port)
            scheduler = Scheduler(
                cache=ResultCache(tmp_path / "front"),
                trace_cache=False,
                transports=[dead, good],
            )
            try:
                outs = await scheduler.submit_grid([spec], n_shards=1)
                return outs, scheduler.metrics
            finally:
                await dead.close()
                await good.close()
                server.close()
                await server.wait_closed()
                agent.close()

        outs, metrics = asyncio.run(scenario())
        assert outs[0].ok and outs[0].status == "ok"
        assert metrics.worker_failures == 1
        assert metrics.shards_replanned == 1
