"""Tests for the trace inspection utilities."""

import pytest

from repro.trace.inspect import dump_records, lock_event_log, summarize_traceset
from repro.workloads import generate_trace
from tests.conftest import make_traceset


@pytest.fixture(scope="module")
def grav_ts():
    return generate_trace("grav", scale=0.05)


class TestSummarize:
    def test_mentions_program_and_procs(self, grav_ts):
        text = summarize_traceset(grav_ts)
        assert "program 'grav'" in text
        assert "10 processors" in text

    def test_one_row_per_processor(self, grav_ts):
        text = summarize_traceset(grav_ts)
        rows = [l for l in text.splitlines() if l.strip() and l.strip()[0].isdigit()]
        assert len(rows) == grav_ts.n_procs

    def test_lists_lock_names(self, grav_ts):
        text = summarize_traceset(grav_ts)
        assert "presto.scheduler" in text

    def test_meta_shown(self, grav_ts):
        assert "scale=0.05" in summarize_traceset(grav_ts)


class TestDump:
    def test_dump_window(self, grav_ts):
        text = dump_records(grav_ts[0], start=0, count=5)
        assert "[     0]" in text
        assert "more records" in text

    def test_dump_kinds_described(self):
        def fn(b, layout):
            code = layout.alloc_code(64)
            la = layout.alloc_lock()
            b.block(4, 10, code)
            b.read(layout.alloc_shared(16), reps=3)
            b.write(layout.alloc_private(0, 16))
            b.lock(0, la)
            b.unlock(0, la)
            b.barrier(2)

        ts = make_traceset([fn])
        text = dump_records(ts[0], count=10)
        assert "IBLOCK" in text and "instr" in text
        assert "x3 (shared)" in text
        assert "(private)" in text
        assert "lock 0" in text
        assert "barrier 2" in text

    def test_running_cycle_positions(self):
        def fn(b, layout):
            code = layout.alloc_code(64)
            b.block(2, 25, code)
            b.block(2, 25, code)
            b.read(layout.alloc_shared(16))

        ts = make_traceset([fn])
        text = dump_records(ts[0], count=10)
        assert "t=        0" in text
        assert "t=       25" in text
        assert "t=       50" in text

    def test_dump_past_end_is_safe(self, grav_ts):
        text = dump_records(grav_ts[0], start=10**9, count=5)
        assert "records" in text


class TestLockEventLog:
    def test_events_paired(self, grav_ts):
        events = lock_event_log(grav_ts)
        locks = sum(1 for e in events if e[3] == "LOCK")
        unlocks = sum(1 for e in events if e[3] == "UNLOCK")
        assert locks == unlocks > 0

    def test_filter_by_lock(self, grav_ts):
        all_events = lock_event_log(grav_ts)
        some_id = all_events[0][4]
        filtered = lock_event_log(grav_ts, lock_id=some_id)
        assert filtered
        assert all(e[4] == some_id for e in filtered)
        assert len(filtered) < len(all_events)

    def test_event_fields(self, grav_ts):
        proc, idx, cycle, kind, lid = lock_event_log(grav_ts)[0]
        assert 0 <= proc < grav_ts.n_procs
        assert idx >= 0
        assert cycle >= 0
        assert kind in ("LOCK", "UNLOCK")

    def test_no_locks_empty_log(self):
        ts = generate_trace("topopt", scale=0.02)
        assert lock_event_log(ts) == []
