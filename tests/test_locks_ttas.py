"""Unit tests for the test-and-test-and-set lock (§2.4): local spinning,
the release burst, winner selection, and the traffic signature."""

import pytest

from repro.sync.ttas import TestAndTestAndSetLockManager
from tests.mock_machine import MockMachine, Recorder

LINE = 0x2000_0000 >> 4


@pytest.fixture
def setup():
    m = MockMachine()
    mgr = TestAndTestAndSetLockManager()
    m.attach_manager(mgr)
    return m, mgr, Recorder()


def acquire_at(m, mgr, rec, t, proc):
    m.at(t, lambda t2: mgr.acquire(proc, 1, LINE, t2, rec.grant_cb(proc)))


def release_at(m, mgr, rec, t, proc):
    m.at(t, lambda t2: mgr.release(proc, 1, LINE, t2, rec.release_cb(proc)))


class TestUncontended:
    def test_acquire_is_read_then_test_and_set(self, setup):
        m, mgr, rec = setup
        acquire_at(m, mgr, rec, 0, 0)
        m.run()
        assert [e[1] for e in m.log] == ["LOCK_READ", "LOCK_RFO"]
        assert rec.grants == [(0, 6, False)]  # 3 + 3 cycles
        assert mgr.locks[1].owner == 0

    def test_silent_release_when_line_still_modified(self, setup):
        m, mgr, rec = setup
        acquire_at(m, mgr, rec, 0, 0)
        release_at(m, mgr, rec, 50, 0)
        m.run()
        # release write hits the M line: no bus op beyond the acquire's
        assert [e[1] for e in m.log] == ["LOCK_READ", "LOCK_RFO"]
        assert rec.releases == [(0, 51, False)]

    def test_reacquire_after_release_uses_cached_copy(self, setup):
        m, mgr, rec = setup
        acquire_at(m, mgr, rec, 0, 0)
        release_at(m, mgr, rec, 50, 0)
        acquire_at(m, mgr, rec, 60, 0)
        m.run()
        # owner still caches the line: straight to the T&S
        assert [e[1] for e in m.log] == ["LOCK_READ", "LOCK_RFO", "LOCK_RFO"]


class TestSpinning:
    def test_spinner_causes_no_traffic_while_held(self, setup):
        m, mgr, rec = setup
        acquire_at(m, mgr, rec, 0, 0)
        acquire_at(m, mgr, rec, 10, 1)
        m.run()
        # spinner did one read to install its copy, then silence
        ops = [e[1] for e in m.log]
        assert ops.count("LOCK_READ") == 2  # owner's + spinner's
        assert mgr.locks[1].owner == 0
        assert 1 in mgr.locks[1].spinners
        assert len(rec.grants) == 1

    def test_release_invalidates_and_wakes_spinners(self, setup):
        m, mgr, rec = setup
        acquire_at(m, mgr, rec, 0, 0)
        acquire_at(m, mgr, rec, 10, 1)
        release_at(m, mgr, rec, 100, 0)
        m.run()
        ops = [e[1] for e in m.log]
        assert "LOCK_INVAL" in ops  # the release store's invalidation
        assert mgr.locks[1].owner == 1
        grant = [g for g in rec.grants if g[0] == 1][0]
        assert grant[2] is True  # contended

    def test_burst_traffic_grows_with_spinners(self, setup):
        m, mgr, rec = setup
        acquire_at(m, mgr, rec, 0, 0)
        for p in range(1, 5):
            acquire_at(m, mgr, rec, 10, p)
        release_at(m, mgr, rec, 200, 0)
        m.run()
        # every spinner re-reads; the winner's T&S invalidates the rest,
        # who re-read again: >= 2 ops per loser
        after_release = [e for e in m.log if e[0] >= 200]
        assert len(after_release) >= 1 + 4 + 1 + 3
        assert mgr.locks[1].owner in (1, 2, 3, 4)

    def test_exactly_one_winner(self, setup):
        m, mgr, rec = setup
        acquire_at(m, mgr, rec, 0, 0)
        for p in range(1, 6):
            acquire_at(m, mgr, rec, 10, p)
        release_at(m, mgr, rec, 100, 0)
        m.run()
        contended_grants = [g for g in rec.grants if g[2]]
        assert len(contended_grants) == 1
        # the rest still spin
        assert len(mgr.locks[1].spinners) == 4

    def test_handoff_slower_than_queuing(self, setup):
        """The emergent hand-off cost must be several times the queuing
        lock's ~3 cycles once a few processors spin."""
        m, mgr, rec = setup
        acquire_at(m, mgr, rec, 0, 0)
        for p in range(1, 6):
            acquire_at(m, mgr, rec, 10, p)
        release_at(m, mgr, rec, 100, 0)
        m.run()
        s = mgr.stats.snapshot()
        assert s.transfers == 1
        assert s.avg_handoff >= 7

    def test_waiters_at_transfer_counts_losers(self, setup):
        m, mgr, rec = setup
        acquire_at(m, mgr, rec, 0, 0)
        for p in range(1, 4):
            acquire_at(m, mgr, rec, 10, p)
        release_at(m, mgr, rec, 100, 0)
        m.run()
        s = mgr.stats.snapshot()
        assert s.waiters_at_transfer_total == 2  # 3 spinners, one won

    def test_chain_drains_all_spinners(self, setup):
        m, mgr, rec = setup
        acquire_at(m, mgr, rec, 0, 0)
        for p in range(1, 4):
            acquire_at(m, mgr, rec, 10, p)
        # release repeatedly until everyone has held the lock once
        def chain(t):
            holder = mgr.locks[1].owner
            if holder is None:
                return
            mgr.release(holder, 1, LINE, t, rec.release_cb(holder))
            m.at(t + 150, chain)

        m.at(150, chain)
        m.run()
        assert len(rec.grants) == 4
        assert mgr.locks[1].spinners == {}
        assert mgr.stats.snapshot().transfers == 3

    def test_invariants(self, setup):
        m, mgr, rec = setup
        acquire_at(m, mgr, rec, 0, 0)
        for p in range(1, 4):
            acquire_at(m, mgr, rec, 10, p)
        m.run()
        mgr.check_invariants()


class TestReleaseWithSharedCopies:
    def test_release_needs_invalidation_when_spinners_cache_line(self, setup):
        m, mgr, rec = setup
        acquire_at(m, mgr, rec, 0, 0)
        acquire_at(m, mgr, rec, 10, 1)
        m.run()
        n_before = len(m.log)
        release_at(m, mgr, rec, 100, 0)
        m.run()
        kinds = [e[1] for e in m.log[n_before:]]
        assert kinds[0] == "LOCK_INVAL"
