"""Tests for Pdsa's real annealing engine."""

import numpy as np
import pytest

from repro.workloads.pdsa import Pdsa, _Annealing


@pytest.fixture
def rng():
    return np.random.default_rng(11)


class TestAnnealing:
    def test_one_cell_per_slot(self, rng):
        a = _Annealing(rng, 100)
        coords = set(zip(a.x.tolist(), a.y.tolist()))
        assert len(coords) == 100

    def test_swap_exchanges_positions(self, rng):
        a = _Annealing(rng, 64)
        a.temperature = 1e9  # accept everything
        xa, ya = int(a.x[0]), int(a.y[0])
        xb, yb = int(a.x[1]), int(a.y[1])
        assert a.propose_swap(0, 1, rng)
        assert (int(a.x[0]), int(a.y[0])) == (xb, yb)
        assert (int(a.x[1]), int(a.y[1])) == (xa, ya)

    def test_rejected_swap_restores_state(self, rng):
        a = _Annealing(rng, 64)
        a.temperature = 1e-12  # only strict improvements pass
        before = (a.x.copy(), a.y.copy())
        for i in range(0, 40, 2):
            if not a.propose_swap(i, i + 1, rng):
                pass
        # every rejected swap must have been undone; accepted ones moved
        # cells, but slot-uniqueness must survive either way
        coords = set(zip(a.x.tolist(), a.y.tolist()))
        assert len(coords) == 64
        del before

    def test_cold_system_only_improves(self, rng):
        a = _Annealing(rng, 256)
        a.temperature = 1e-12

        def total_cost():
            return sum(a._cell_cost(c) for c in range(a.n_cells))

        start = total_cost()
        for _ in range(400):
            i, j = rng.integers(0, 256, size=2)
            if i != j:
                a.propose_swap(int(i), int(j), rng)
        assert total_cost() <= start

    def test_hot_system_accepts_most(self, rng):
        a = _Annealing(rng, 256)
        a.temperature = 1e9
        for _ in range(100):
            i, j = rng.integers(0, 256, size=2)
            if i != j:
                a.propose_swap(int(i), int(j), rng)
        assert a.accepted / a.proposed > 0.95

    def test_cooling_schedule(self, rng):
        a = _Annealing(rng, 64)
        t0 = a.temperature
        for _ in range(10):
            a.cool()
        assert a.temperature == pytest.approx(t0 * 0.97**10)


class TestPdsaIntegration:
    def test_acceptance_rate_falls_as_it_cools(self):
        """The trace's shared-write density tracks the schedule: early
        chunks commit more swaps than late chunks."""
        wl = Pdsa(scale=1.0, seed=4)
        ts = wl.generate()
        anneal = wl._anneal
        # a real annealer at these sizes accepts some but not all
        rate = anneal.accepted / anneal.proposed
        assert 0.05 < rate < 0.9

        from repro.trace.records import WRITE

        # compare swap-writes in the first vs last third of one trace
        t = ts[0]
        rec = t.records
        writes = np.flatnonzero(rec["kind"] == WRITE)
        third = len(rec) // 3
        early = np.count_nonzero(writes < third)
        late = np.count_nonzero(writes > 2 * third)
        assert early >= late

    def test_annealing_actually_reduces_wirelength(self):
        wl = Pdsa(scale=1.0, seed=9)
        rng = np.random.default_rng(9)
        fresh = _Annealing(rng, Pdsa.CELLS)

        def cost(a):
            return sum(a._cell_cost(c) for c in range(0, a.n_cells, 7))

        start_cost = cost(fresh)
        wl.generate()
        assert cost(wl._anneal) < start_cost
