"""Tests for the bus observer and anatomy report."""

import pytest

from repro.consistency import SEQUENTIAL
from repro.machine.buslog import BusLog, render_bus_anatomy
from repro.machine.system import System
from repro.sync import QueuingLockManager, TestAndTestAndSetLockManager
from repro.workloads import generate_trace
from tests.conftest import make_traceset, tiny_machine


def logged_run(build_fns, mgr=None):
    ts = make_traceset(build_fns)
    system = System(
        ts, tiny_machine(n_procs=ts.n_procs), mgr or QueuingLockManager(), SEQUENTIAL
    )
    log = BusLog.attach(system)
    return log, system.run()


class TestBusLog:
    def test_records_every_grant(self):
        def fn(b, layout):
            sh = layout.alloc_shared(256)
            for i in range(4):
                b.read(sh + i * 64)

        log, result = logged_run([fn])
        assert len(log) == result.meta["bus_grants"]

    def test_hold_total_matches_busy_cycles(self):
        def fn(b, layout):
            sh = layout.alloc_shared(512)
            for i in range(8):
                b.read(sh + i * 64)
                b.write(sh + i * 64)

        log, result = logged_run([fn, fn])
        assert sum(log.holds) == result.bus_busy_cycles

    def test_class_breakdown_partitions_cycles(self):
        def fn(b, layout):
            sh = layout.alloc_shared(256)
            la = layout.alloc_lock()
            b.read(sh)
            b.lock(0, la)
            b.write(sh)
            b.unlock(0, la)

        log, _ = logged_run([fn])
        by_class = log.cycles_by_class()
        assert sum(by_class.values()) == sum(log.holds)
        assert "lock traffic" in by_class
        assert "data fills" in by_class

    def test_timeline_bounded(self):
        def fn(b, layout):
            sh = layout.alloc_shared(4096)
            for i in range(32):
                b.read(sh + i * 128)

        log, result = logged_run([fn, fn, fn])
        tl = log.timeline(result.run_time, buckets=10)
        assert len(tl) == 10
        assert all(0.0 <= x <= 1.0 for x in tl)
        assert max(tl) > 0

    def test_no_observer_no_overhead_path(self):
        """Systems without an attached log behave identically."""

        def fn(b, layout):
            b.read(layout.alloc_shared(16))

        ts1 = make_traceset([fn])
        r1 = System(ts1, tiny_machine(1), QueuingLockManager(), SEQUENTIAL).run()
        log, r2 = logged_run([fn])
        assert r1.run_time == r2.run_time

    def test_render_mentions_classes_and_sparkline(self):
        def fn(b, layout):
            sh = layout.alloc_shared(256)
            b.read(sh)
            b.write(sh + 64)

        log, result = logged_run([fn])
        text = render_bus_anatomy(log, result)
        assert "Bus anatomy" in text
        assert "data fills" in text
        assert "occupancy over time" in text

    def test_ttas_lock_traffic_exceeds_queuing(self):
        ts = generate_trace("pdsa", scale=0.2)
        sys_q = System(
            ts, tiny_machine(n_procs=ts.n_procs), QueuingLockManager(), SEQUENTIAL
        )
        log_q = BusLog.attach(sys_q)
        sys_q.run()
        sys_t = System(
            ts,
            tiny_machine(n_procs=ts.n_procs),
            TestAndTestAndSetLockManager(),
            SEQUENTIAL,
        )
        log_t = BusLog.attach(sys_t)
        sys_t.run()
        assert log_t.lock_traffic_cycles() > 2 * log_q.lock_traffic_cycles()
