"""Property-based tests of the full simulator.

Random (valid) multi-processor traces are simulated under every lock
scheme and both consistency models; the properties are global accounting
identities and liveness:

* the simulation always terminates (no deadlock) and every processor
  completes its trace;
* per-processor, ``completion_time == work + all stall categories``;
* reference conservation: cache hit+miss counters equal the trace's
  reference counts;
* every lock acquire in the trace is granted exactly once;
* run-time never beats the ideal critical path (max work cycles).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consistency import SEQUENTIAL, WEAK
from repro.machine.system import System
from repro.sync import (
    QueuingLockManager,
    TestAndTestAndSetLockManager,
)
from repro.trace.records import IBLOCK, LOCK, READ, WRITE
from tests.conftest import tiny_machine
from tests.test_trace_properties import build_traceset, trace_programs

schemes = st.sampled_from([QueuingLockManager, TestAndTestAndSetLockManager])
models = st.sampled_from([SEQUENTIAL, WEAK])
programs_strategy = st.lists(trace_programs(max_ops=30), min_size=1, max_size=4)


def simulate(ts, scheme_cls, model):
    system = System(
        ts,
        tiny_machine(n_procs=ts.n_procs),
        scheme_cls(),
        model,
        max_events=2_000_000,
    )
    return system.run(), system


class TestSimulationProperties:
    @given(programs_strategy, schemes, models)
    @settings(max_examples=50, deadline=None)
    def test_terminates_and_accounts_time(self, programs, scheme_cls, model):
        ts = build_traceset(programs)
        result, _ = simulate(ts, scheme_cls, model)
        for m in result.proc_metrics:
            assert m.completion_time == m.work_cycles + m.total_stall
        assert result.run_time == max(m.completion_time for m in result.proc_metrics)

    @given(programs_strategy, schemes, models)
    @settings(max_examples=40, deadline=None)
    def test_reference_conservation(self, programs, scheme_cls, model):
        ts = build_traceset(programs)
        result, _ = simulate(ts, scheme_cls, model)
        reads = writes = ifetches = 0
        for t in ts:
            rec = t.records
            reads += int(rec["arg"][rec["kind"] == READ].sum())
            writes += int(rec["arg"][rec["kind"] == WRITE].sum())
            ifetches += int(rec["arg"][rec["kind"] == IBLOCK].sum())
        assert result.read_hits + result.read_misses == reads
        assert result.write_hits + result.write_misses == writes
        assert result.ifetch_hits + result.ifetch_misses == ifetches

    @given(programs_strategy, schemes, models)
    @settings(max_examples=40, deadline=None)
    def test_every_lock_acquire_granted_once(self, programs, scheme_cls, model):
        ts = build_traceset(programs)
        expected = sum(int((t.records["kind"] == LOCK).sum()) for t in ts)
        result, _ = simulate(ts, scheme_cls, model)
        assert result.lock_stats.acquisitions == expected

    @given(programs_strategy, schemes, models)
    @settings(max_examples=40, deadline=None)
    def test_runtime_at_least_ideal(self, programs, scheme_cls, model):
        ts = build_traceset(programs)
        result, _ = simulate(ts, scheme_cls, model)
        ideal = max(int(t.records["cycles"].sum()) for t in ts)
        assert result.run_time >= ideal

    @given(programs_strategy, schemes)
    @settings(max_examples=25, deadline=None)
    def test_wo_never_slower_than_sc_by_much(self, programs, scheme_cls):
        """Weak ordering relaxes constraints; it may reorder contention
        but must not blow up run-time (sanity band, not a theorem)."""
        ts = build_traceset(programs)
        sc, _ = simulate(ts, scheme_cls, SEQUENTIAL)
        ts2 = build_traceset(programs)
        wo, _ = simulate(ts2, scheme_cls, WEAK)
        assert wo.run_time <= sc.run_time * 1.5 + 200

    @given(programs_strategy)
    @settings(max_examples=25, deadline=None)
    def test_deterministic_replay(self, programs):
        ts1 = build_traceset(programs)
        r1, _ = simulate(ts1, QueuingLockManager, SEQUENTIAL)
        ts2 = build_traceset(programs)
        r2, _ = simulate(ts2, QueuingLockManager, SEQUENTIAL)
        assert r1.run_time == r2.run_time
        assert r1.bus_busy_cycles == r2.bus_busy_cycles
        assert r1.lock_stats == r2.lock_stats

    @given(programs_strategy, models)
    @settings(max_examples=25, deadline=None)
    def test_cache_invariants_after_simulation(self, programs, model):
        ts = build_traceset(programs)
        _, system = simulate(ts, QueuingLockManager, model)
        for cache in system.caches:
            cache.check_invariants()
        # single-writer invariant: a MODIFIED line is in exactly one cache
        from repro.machine.cache import MODIFIED

        seen_dirty = {}
        for p, cache in enumerate(system.caches):
            for line, state in cache.state.items():
                if state == MODIFIED:
                    assert line not in seen_dirty, (
                        f"line {line:#x} MODIFIED in caches {seen_dirty[line]} and {p}"
                    )
                    seen_dirty[line] = p

    @given(
        programs_strategy,
        models,
        st.sampled_from(["illinois", "update"]),
        st.sampled_from(["writeback", "writethrough"]),
    )
    @settings(max_examples=40, deadline=None)
    def test_accounting_holds_for_every_machine_variant(
        self, programs, model, coherence, policy
    ):
        """The accounting identity and termination must survive every
        combination of protocol, write policy and consistency model."""
        from dataclasses import replace

        from repro.machine.config import CacheConfig

        ts = build_traceset(programs)
        cfg = replace(
            tiny_machine(n_procs=ts.n_procs),
            coherence=coherence,
            cache=CacheConfig(write_policy=policy),
        )
        system = System(ts, cfg, QueuingLockManager(), model, max_events=2_000_000)
        result = system.run()
        for m in result.proc_metrics:
            assert m.completion_time == m.work_cycles + m.total_stall
        for cache in system.caches:
            cache.check_invariants()

    @given(programs_strategy, models)
    @settings(max_examples=25, deadline=None)
    def test_shared_lines_never_coexist_with_modified(self, programs, model):
        ts = build_traceset(programs)
        _, system = simulate(ts, QueuingLockManager, model)
        from repro.machine.cache import EXCLUSIVE, MODIFIED

        holders: dict[int, list] = {}
        for p, cache in enumerate(system.caches):
            for line, state in cache.state.items():
                holders.setdefault(line, []).append(state)
        for line, states in holders.items():
            if len(states) > 1:
                assert MODIFIED not in states, f"M coexists on line {line:#x}"
                assert EXCLUSIVE not in states, f"E coexists on line {line:#x}"
