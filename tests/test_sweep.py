"""Tests for the parameter-sweep utilities."""

from dataclasses import replace

import pytest

from repro.core.sweep import SweepPoint, render_sweep, sweep_machine, sweep_procs
from repro.machine.config import MachineConfig, MemoryConfig
from repro.workloads import generate_trace


class TestSweepProcs:
    @pytest.fixture(scope="class")
    def points(self):
        return sweep_procs("fullconn", [2, 4], scale=0.05)

    def test_one_point_per_size(self, points):
        assert [p.value for p in points] == [2, 4]
        assert all(isinstance(p, SweepPoint) for p in points)

    def test_machine_size_matches(self, points):
        for p in points:
            assert p.result.n_procs == p.value

    def test_labels_readable(self, points):
        assert points[0].label == "2 procs"

    def test_lock_scheme_passthrough(self):
        pts = sweep_procs("fullconn", [2], scale=0.05, lock_scheme="ttas")
        assert pts[0].result.lock_scheme == "ttas"


class TestSweepMachine:
    def test_config_family(self):
        ts = generate_trace("pverify", scale=0.05)
        base = MachineConfig()
        pts = sweep_machine(
            ts,
            [
                ("fast", replace(base, memory=MemoryConfig(access_cycles=1))),
                ("slow", replace(base, memory=MemoryConfig(access_cycles=9))),
            ],
        )
        assert [p.label for p in pts] == ["fast", "slow"]
        assert pts[0].result.run_time < pts[1].result.run_time

    def test_proc_count_adapted_to_trace(self):
        ts = generate_trace("topopt", scale=0.02)  # 9 procs
        pts = sweep_machine(ts, [("base", MachineConfig(n_procs=12))])
        assert pts[0].result.n_procs == 9


class TestRenderSweep:
    def test_default_columns(self):
        pts = sweep_procs("fullconn", [2], scale=0.05)
        text = render_sweep(pts, title="T")
        assert text.startswith("T\n")
        for col in ("run-time", "util %", "waiters"):
            assert col in text

    def test_custom_columns(self):
        pts = sweep_procs("fullconn", [2], scale=0.05)
        text = render_sweep(
            pts, columns=[("whr", lambda r: round(100 * r.write_hit_ratio, 1))]
        )
        assert "whr" in text
        assert "run-time" not in text
