"""Unit tests for the cache: geometry, LRU, MESI transitions, snoops."""

import pytest

from repro.machine.cache import EXCLUSIVE, INVALID, MODIFIED, SHARED, Cache
from repro.machine.config import CacheConfig


@pytest.fixture
def cache():
    return Cache(CacheConfig())


@pytest.fixture
def tiny():
    # 4 sets x 2 ways of 16-byte lines = 128 bytes
    return Cache(CacheConfig(size_bytes=128, line_bytes=16, assoc=2))


class TestGeometry:
    def test_paper_geometry(self):
        c = CacheConfig()
        assert c.n_lines == 4096
        assert c.n_sets == 2048
        assert c.offset_bits == 4

    def test_invalid_line_size_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(line_bytes=24)

    def test_indivisible_size_rejected(self):
        with pytest.raises(ValueError):
            CacheConfig(size_bytes=100)

    def test_set_mapping(self, tiny):
        assert tiny.set_of(0) == 0
        assert tiny.set_of(4) == 0
        assert tiny.set_of(5) == 1


class TestLookupInstall:
    def test_miss_then_hit(self, cache):
        assert cache.lookup(10) == INVALID
        cache.install(10, EXCLUSIVE)
        assert cache.lookup(10) == EXCLUSIVE

    def test_install_returns_no_victim_with_space(self, tiny):
        assert tiny.install(0, SHARED) is None
        assert tiny.install(4, SHARED) is None  # same set, second way

    def test_lru_victim_is_least_recent(self, tiny):
        tiny.install(0, SHARED)
        tiny.install(4, SHARED)
        tiny.lookup(0)  # touch 0: now 4 is LRU
        victim = tiny.install(8, SHARED)  # same set 0
        assert victim == (4, False)
        assert tiny.probe(4) == INVALID
        assert tiny.probe(0) == SHARED

    def test_dirty_eviction_flagged(self, tiny):
        tiny.install(0, MODIFIED)
        tiny.install(4, SHARED)
        tiny.lookup(4)
        victim = tiny.install(8, SHARED)
        assert victim == (0, True)

    def test_reinstall_resident_line_updates_state(self, tiny):
        tiny.install(0, SHARED)
        assert tiny.install(0, MODIFIED) is None
        assert tiny.probe(0) == MODIFIED

    def test_install_invalid_rejected(self, tiny):
        with pytest.raises(ValueError):
            tiny.install(0, INVALID)

    def test_set_state(self, tiny):
        tiny.install(0, SHARED)
        tiny.set_state(0, MODIFIED)
        assert tiny.probe(0) == MODIFIED

    def test_set_state_missing_line_rejected(self, tiny):
        with pytest.raises(KeyError):
            tiny.set_state(0, MODIFIED)

    def test_set_state_to_invalid_rejected(self, tiny):
        tiny.install(0, SHARED)
        with pytest.raises(ValueError):
            tiny.set_state(0, INVALID)

    def test_probe_does_not_touch_lru(self, tiny):
        tiny.install(0, SHARED)
        tiny.install(4, SHARED)
        tiny.probe(0)  # no LRU update: 0 stays LRU
        victim = tiny.install(8, SHARED)
        assert victim[0] == 0


class TestSnoops:
    def test_snoop_read_on_modified_supplies_dirty_and_downgrades(self, tiny):
        tiny.install(0, MODIFIED)
        present, dirty = tiny.snoop_read(0)
        assert (present, dirty) == (True, True)
        assert tiny.probe(0) == SHARED

    def test_snoop_read_on_exclusive_downgrades_clean(self, tiny):
        tiny.install(0, EXCLUSIVE)
        assert tiny.snoop_read(0) == (True, False)
        assert tiny.probe(0) == SHARED

    def test_snoop_read_on_shared_stays_shared(self, tiny):
        tiny.install(0, SHARED)
        assert tiny.snoop_read(0) == (True, False)
        assert tiny.probe(0) == SHARED

    def test_snoop_read_absent(self, tiny):
        assert tiny.snoop_read(0) == (False, False)

    def test_snoop_invalidate_drops_line(self, tiny):
        tiny.install(0, MODIFIED)
        assert tiny.snoop_invalidate(0) == (True, True)
        assert tiny.probe(0) == INVALID
        tiny.check_invariants()

    def test_snoop_invalidate_absent(self, tiny):
        assert tiny.snoop_invalidate(0) == (False, False)

    def test_invalidated_way_is_reusable(self, tiny):
        tiny.install(0, SHARED)
        tiny.install(4, SHARED)
        tiny.snoop_invalidate(0)
        assert tiny.install(8, SHARED) is None  # freed way, no eviction


class TestCounters:
    def test_eviction_counter(self, tiny):
        tiny.install(0, SHARED)
        tiny.install(4, SHARED)
        tiny.install(8, SHARED)
        assert tiny.counters.evictions == 1

    def test_invalidation_counter(self, tiny):
        tiny.install(0, SHARED)
        tiny.snoop_invalidate(0)
        assert tiny.counters.invalidations_received == 1

    def test_c2c_counter(self, tiny):
        tiny.install(0, MODIFIED)
        tiny.snoop_read(0)
        assert tiny.counters.c2c_supplied == 1

    def test_write_hit_ratio(self):
        from repro.machine.cache import CacheCounters

        c = CacheCounters()
        assert c.write_hit_ratio == 1.0
        c.write_hits = 9
        c.write_misses = 1
        assert c.write_hit_ratio == pytest.approx(0.9)


class TestInvariants:
    def test_invariants_hold_after_mixed_ops(self, tiny):
        ops = [
            (tiny.install, (0, SHARED)),
            (tiny.install, (4, MODIFIED)),
            (tiny.lookup, (0,)),
            (tiny.install, (8, EXCLUSIVE)),
            (tiny.snoop_read, (8,)),
            (tiny.snoop_invalidate, (0,)),
            (tiny.install, (12, SHARED)),
        ]
        for fn, args in ops:
            fn(*args)
            tiny.check_invariants()

    def test_occupancy_bounded_by_capacity(self, tiny):
        for line in range(32):
            tiny.install(line, SHARED)
        assert tiny.occupancy() <= tiny.n_sets * tiny.assoc
        tiny.check_invariants()
