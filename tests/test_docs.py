"""Documentation consistency: the docs must reference things that exist.

Cheap guards against doc rot: every file path, module, CLI subcommand
and bench target named in README/DESIGN/EXPERIMENTS must actually exist
in the repository.
"""

import re
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]


def read(name: str) -> str:
    return (ROOT / name).read_text()


class TestReadme:
    def test_examples_listed_exist(self):
        text = read("README.md")
        for m in re.finditer(r"examples/([a-z_]+\.py)", text):
            assert (ROOT / "examples" / m.group(1)).exists(), m.group(0)

    def test_cli_commands_exist(self):
        from repro.cli import build_parser

        text = read("README.md")
        parser_help = build_parser().format_help()
        for cmd in re.findall(r"python -m repro ([a-z0-9]+)", text):
            assert cmd in parser_help, cmd

    def test_quickstart_snippet_runs(self):
        code = (
            "from repro import generate_trace, simulate\n"
            "trace = generate_trace('grav', scale=0.05)\n"
            "result = simulate(trace)\n"
            "print(result.summary())\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True, timeout=120
        )
        assert proc.returncode == 0, proc.stderr[-1000:]
        assert "grav" in proc.stdout


class TestDesign:
    def test_module_map_paths_exist(self):
        text = read("DESIGN.md")
        for m in re.finditer(r"`(src/repro/[a-z_/]+\.py)`", text):
            assert (ROOT / m.group(1)).exists(), m.group(0)
        for m in re.finditer(r"\b([a-z_]+/[a-z_]+\.py)\b", text):
            path = m.group(1)
            if path.startswith(("machine/", "trace/", "sync/", "core/", "workloads/", "consistency/")):
                assert (ROOT / "src" / "repro" / path).exists(), path

    def test_bench_targets_exist(self):
        text = read("DESIGN.md")
        for m in re.finditer(r"benchmarks/(test_[a-z0-9_]+\.py)", text):
            assert (ROOT / "benchmarks" / m.group(1)).exists(), m.group(0)

    def test_no_title_mismatch_note(self):
        """DESIGN.md §paper-check confirms we built the right paper."""
        text = read("DESIGN.md").replace("\n", " ")
        assert "No title collision" in text


class TestExperiments:
    def test_bench_references_exist(self):
        text = read("EXPERIMENTS.md")
        for m in re.finditer(r"test_[a-z0-9_]+\.py", text):
            assert (ROOT / "benchmarks" / m.group(0)).exists() or (
                ROOT / "tests" / m.group(0)
            ).exists(), m.group(0)

    def test_every_table_has_a_section(self):
        text = read("EXPERIMENTS.md")
        for n in range(1, 9):
            assert f"Table {n} " in text or f"Table {n} —" in text, n
        assert "Figure 1" in text

    def test_claims_count_matches_registry(self):
        from repro.core.claims import CLAIMS

        assert len(CLAIMS) == 16  # EXPERIMENTS/README advertise 16 claims


class TestDocsDir:
    def test_internals_mentions_real_modules(self):
        text = read("docs/internals.md")
        for mod in ("machine/coherence.py", "consistency/tso.py"):
            assert mod.split("/")[-1].replace(".py", "") in text.replace("/", " ")

    def test_workloads_doc_covers_all_benchmarks(self):
        text = read("docs/workloads.md")
        for name in ("Grav", "Pdsa", "FullConn", "Pverify", "Qsort", "Topopt"):
            assert name in text
