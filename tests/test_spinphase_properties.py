"""Property-based tests of the spin-phase collapse kernel.

Three families:

* **Closed-form iteration math against reference** -- the kernel
  fast-forwards a holder's silent bounces in closed form: bounce ``m``
  of a run starting at record ``i0`` at local time ``t`` fires at
  ``t + c_cycles[i0 + m*batch] - c_cycles[i0]``, and both the horizon
  pre-truncation and the final clip count the bounces firing *strictly
  before* the horizon with one ``searchsorted`` over the strided
  prefix-sum array.  These properties re-derive that count with a
  per-bounce Python loop over the same tables and require exact
  agreement, including at the boundaries (a bounce firing exactly at
  the horizon must not be collapsed).

* **Dynamic equivalence** -- random valid multi-processor programs
  (shared locks, shared data, idle-signature, timer-signature and
  opaque schemes, both consistency models) run with ``spin_kernel`` on
  and off must produce byte-identical serialized results AND leave
  every cache in the identical microarchitectural state (MESI dict and
  LRU ways): collapsing a certified lock-wait phase is per-record
  replay, counter by counter and way by way.

* **Mid-spin interruption** -- hitting the engine's ``max_events``
  guard at *every* possible dispatch point of a contended run --
  including between a spin-phase collapse and its emitted resumes --
  leaves the engine's books consistent and the run resumable to the
  exact uninterrupted result.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consistency import SEQUENTIAL, WEAK
from repro.machine.config import MachineConfig
from repro.machine.spinphase import SpinKernel
from repro.machine.system import System
from repro.runner.serialize import result_to_dict
from repro.sync import (
    BackoffTestAndSetLockManager,
    QueuingLockManager,
    TestAndSetLockManager,
    TicketLockManager,
)
from repro.trace.builder import TraceBuilder
from repro.trace.layout import AddressLayout
from repro.trace.records import TraceSet
from tests.test_trace_properties import build_traceset, trace_programs

schemes = st.sampled_from(
    [
        QueuingLockManager,  # idle signature (queue-parked)
        TicketLockManager,  # idle signature
        BackoffTestAndSetLockManager,  # timer signature (backed-off retry)
        TestAndSetLockManager,  # dense retries: window-rejected / opaque
    ]
)
models = st.sampled_from([SEQUENTIAL, WEAK])
programs_strategy = st.lists(trace_programs(max_ops=40), min_size=2, max_size=3)


def _canonical(result):
    return json.loads(json.dumps(result_to_dict(result), sort_keys=True))


def _contended_traceset(n_procs=2, iters=3, hot=150, program="spin-prop"):
    """Every processor hammers one shared lock; the critical sections
    are private hit loops long enough for multiple whole bounces."""
    layout = AddressLayout(n_procs=n_procs)
    lock = layout.alloc_lock()
    traces = []
    for p in range(n_procs):
        b = TraceBuilder(p, layout, program=program)
        code = layout.alloc_code(64)
        base = layout.alloc_private(p, 8 * 16)
        for j in range(8):  # warm the working set: later reads all hit
            b.read(base + 16 * j)
        for _ in range(iters):
            b.lock(0, lock)
            for j in range(hot):
                b.block(2, 2, code)
                b.read(base + 16 * (j % 8))
            b.unlock(0, lock)
        traces.append(b.finish())
    return TraceSet(traces, layout, program=program)


class TestClosedFormAgainstReference:
    """The kernel's searchsorted bounce counting vs a per-bounce loop."""

    @given(programs_strategy, st.data())
    @settings(max_examples=40, deadline=None)
    def test_horizon_clip_counts_strictly_earlier_bounces(self, programs, data):
        """For any run start, local time and horizon, the kernel's
        closed-form clip (``searchsorted`` over the strided cumulative
        -cycle array) equals the number of whole bounces whose reference
        fire time is strictly before the horizon."""
        ts = build_traceset(programs)
        system = System(
            ts, MachineConfig(n_procs=ts.n_procs), TicketLockManager(), SEQUENTIAL
        )
        kern = system.kernel
        assert isinstance(kern, SpinKernel)
        batch = kern.batch
        proc = data.draw(st.integers(0, ts.n_procs - 1), label="proc")
        tab = kern.tabs[proc]
        n = len(tab.code)
        starts = [i for i in range(n) if tab.win_end[i] - i >= batch]
        if not starts:
            return
        i0 = data.draw(st.sampled_from(starts), label="i0")
        j_s = int(tab.win_end[i0])
        m_cap = (j_s - i0) // batch
        t = data.draw(st.integers(0, 10_000), label="local time")
        # horizons straddling the span's cycle range, incl. exact hits
        ac = tab.a_cycles
        span_cycles = int(ac[i0 + m_cap * batch]) - int(ac[i0])
        t_safe = t + data.draw(
            st.integers(-1, span_cycles + 2), label="horizon offset"
        )

        # the kernel's closed form (kernel.attempt, horizon clip)
        u = ac[i0 : i0 + m_cap * batch + 1 : batch]
        m_star = int(np.searchsorted(u[:m_cap], t_safe - t + int(ac[i0])))

        # the per-bounce reference: bounce m fires at
        # t + cc[i0 + m*batch] - cc[i0]
        cc = tab.c_cycles
        ref = 0
        for m in range(m_cap):
            fire = t + cc[i0 + m * batch] - cc[i0]
            if fire < t_safe:
                ref += 1
            else:
                break
        assert m_star == ref
        # the strictness boundary: a bounce firing exactly at the
        # horizon is never collapsed
        if ref < m_cap:
            fire = t + cc[i0 + ref * batch] - cc[i0]
            assert fire >= t_safe

    @given(programs_strategy, st.data())
    @settings(max_examples=40, deadline=None)
    def test_analysis_pretruncation_never_drops_a_retirable_bounce(
        self, programs, data
    ):
        """The horizon pre-truncation of the *analysis* window (whole
        bounces, rounded up) always covers every bounce the final clip
        could retire: truncating the work can never change the result."""
        ts = build_traceset(programs)
        system = System(
            ts, MachineConfig(n_procs=ts.n_procs), TicketLockManager(), SEQUENTIAL
        )
        kern = system.kernel
        batch = kern.batch
        proc = data.draw(st.integers(0, ts.n_procs - 1), label="proc")
        tab = kern.tabs[proc]
        n = len(tab.code)
        starts = [i for i in range(n) if tab.win_end[i] - i >= batch]
        if not starts:
            return
        i0 = data.draw(st.sampled_from(starts), label="i0")
        j_s = int(tab.win_end[i0])
        t = data.draw(st.integers(0, 10_000), label="local time")
        ac = tab.a_cycles
        span_cycles = int(ac[j_s - (j_s - i0) % batch]) - int(ac[i0])
        t_safe = t + data.draw(
            st.integers(0, span_cycles + 2), label="horizon offset"
        )

        # kernel.attempt's pre-truncation: searchsorted over the strided
        # array *including* the terminating entry
        m_h = int(
            np.searchsorted(ac[i0 : j_s + 1 : batch], t_safe - t + int(ac[i0]))
        )
        j_trunc = min(j_s, i0 + m_h * batch)

        # no bounce entirely inside [i0, j_trunc)'s complement can fire
        # strictly before t_safe: everything beyond the truncated window
        # was unretirable anyway
        cc = tab.c_cycles
        m_trunc = (j_trunc - i0) // batch
        m_all = (j_s - i0) // batch
        for m in range(m_trunc, m_all):
            fire = t + cc[i0 + m * batch] - cc[i0]
            assert fire >= t_safe


class TestDynamicEquivalence:
    @given(programs_strategy, schemes, models)
    @settings(max_examples=40, deadline=None)
    def test_spin_kernel_is_byte_identical_and_microarch_identical(
        self, programs, scheme_cls, model
    ):
        ts = build_traceset(programs)
        results = {}
        states = {}
        ways = {}
        for spin_on in (True, False):
            system = System(
                ts,
                MachineConfig(n_procs=ts.n_procs, spin_kernel=spin_on),
                scheme_cls(),
                model,
                max_events=2_000_000,
            )
            # engage even on tiny traces: every gate here is a cost
            # heuristic, never a legality condition
            system.kernel.min_span = 1
            system.kernel.backoff = 0
            if spin_on:
                system.kernel.min_window = 0
                system.kernel._gate = 0
            results[spin_on] = _canonical(system.run())
            states[spin_on] = [dict(c.state) for c in system.caches]
            ways[spin_on] = [list(c._ways) for c in system.caches]
        assert results[True] == results[False]
        assert states[True] == states[False]
        assert ways[True] == ways[False]

    def test_spin_kernel_actually_collapses_contended_phases(self):
        """Anti-vacuity at default gates: a contended hot loop produces
        waiter-bearing collapses under both signature kinds, with the
        certification counters accounting for every certified waiter."""
        for scheme_cls, kind in (
            (TicketLockManager, "idle"),
            (BackoffTestAndSetLockManager, "timer"),
        ):
            ts = _contended_traceset(n_procs=4, iters=6, hot=400)
            system = System(
                ts, MachineConfig(n_procs=4), scheme_cls(), SEQUENTIAL
            )
            system.run()
            kern = system.kernel
            assert kern.spin_segments > 0, kind
            assert kern.spin_waiters >= kern.spin_segments, kind
            certs = kern.spin_idle_certs + kern.spin_timer_certs
            assert certs >= kern.spin_waiters, kind
            if kind == "idle":
                assert kern.spin_idle_certs > 0
            else:
                assert kern.spin_timer_certs > 0


class TestInterruption:
    def test_max_events_overflow_mid_spin_is_resumable(self):
        """Hitting ``max_events`` at every possible dispatch point --
        including mid-spin, between a waiter-bearing collapse and the
        holder's emitted resume -- leaves the engine's books consistent
        and the preserved queue drains to the exact uninterrupted
        result."""
        ts = _contended_traceset(n_procs=2, iters=3, hot=150)

        def build(k=None):
            return System(
                ts,
                MachineConfig(n_procs=2),
                TicketLockManager(),
                SEQUENTIAL,
                max_events=k,
            )

        ref_sys = build()
        ref = _canonical(ref_sys.run())
        total = ref_sys.engine.dispatched_total
        assert ref_sys.kernel.spin_segments > 0  # the spin path engaged

        mid_spin = 0
        for k in range(1, total):
            system = build(k)
            with pytest.raises(RuntimeError, match="exceeded"):
                system.run()
            engine = system.engine
            assert engine.pending() == sum(
                len(b) for b in engine._buckets.values()
            )
            assert sorted(engine._times) == sorted(engine._buckets)
            if system.kernel.spin_segments and not all(
                p.done for p in system.procs
            ):
                mid_spin += 1
            engine.run()  # drain the preserved tail to completion
            assert _canonical(system._collect()) == ref
        assert mid_spin > 0  # some interruptions landed mid-spin
