"""Mutation coverage for the spin-phase auditor.

Each SPIN fault (:data:`repro.audit.faults.SPIN_FAULTS`) corrupts one
leg of the spin-phase collapse kernel's certification -- the lock port's
spin signature, the timer horizon, or the per-phase waiter list -- and
the spin auditor's independent re-derivation must catch the first
corrupted collapse with the right check.  The faults need a *contended*
workload (every fault arms inside a lock-wait phase, which the base
kernel faults never enter) with critical sections long enough to clear
the entry gate and, for the timer faults, to span several backed-off
retry windows.

Note the faults corrupt the *proof*, not necessarily the outcome: the
horizon is a conservative legality bound, so a collapse with a corrupted
certificate can still happen to commute and leave the results
byte-identical.  That is exactly why the auditor must reject invalid
certificates at the collapse instead of trusting end-to-end comparisons
to notice.
"""

import pytest

from repro.audit import AuditError, SystemAuditor
from repro.audit.faults import SPIN_FAULTS, inject
from repro.audit.report import SPIN
from repro.consistency import SEQUENTIAL
from repro.machine.config import MachineConfig
from repro.machine.system import System
from repro.sync import get_lock_manager
from repro.trace.builder import TraceBuilder
from repro.trace.layout import AddressLayout
from repro.trace.records import TraceSet

pytestmark = pytest.mark.audit

N_PROCS = 4


def _contended_traceset(iters=6, hot=400, program="spin-fault"):
    """All processors hammer ONE shared lock; each critical section is a
    private hit loop long enough (800 records, ~1200 cycles) to clear
    the kernel's entry gate and to span multiple backoff retry windows
    (cap 512 cycles), so every hold produces waiter-bearing collapse
    attempts."""
    layout = AddressLayout(n_procs=N_PROCS)
    lock = layout.alloc_lock()
    traces = []
    for p in range(N_PROCS):
        b = TraceBuilder(p, layout, program=program)
        code = layout.alloc_code(64)
        base = layout.alloc_private(p, 8 * 16)
        for j in range(8):  # warm the working set: later reads all hit
            b.read(base + 16 * j)
        for _ in range(iters):
            b.lock(0, lock)
            for j in range(hot):
                b.block(2, 2, code)
                b.read(base + 16 * (j % 8))
            b.unlock(0, lock)
        traces.append(b.finish())
    return TraceSet(traces, layout, program=program)


def _system(scheme, spin_kernel=True):
    ts = _contended_traceset()
    cfg = MachineConfig(n_procs=N_PROCS, spin_kernel=spin_kernel)
    return System(ts, cfg, get_lock_manager(scheme), SEQUENTIAL)


# -- the mutation battery ---------------------------------------------------


@pytest.mark.parametrize("name", sorted(SPIN_FAULTS))
def test_spin_fault_detected_with_right_category_and_check(name):
    spec = SPIN_FAULTS[name]
    system = _system(spec.scheme)
    SystemAuditor.attach(system, mode="raise")
    inject(system, name)
    with pytest.raises(AuditError) as exc:
        system.run()
    violation = exc.value.violation
    assert violation.category == SPIN, (
        f"{name}: expected a {SPIN} violation, got {violation}"
    )
    assert violation.check in spec.checks, (
        f"{name}: check {violation.check!r} not in {sorted(spec.checks)}"
    )


@pytest.mark.parametrize("name", sorted(SPIN_FAULTS))
def test_same_machine_runs_clean_without_the_fault(name):
    """Control: the same contended workload under the same scheme,
    unfaulted, runs to completion under a raise-mode auditor -- with
    real spin collapses certified and audited (anti-vacuity)."""
    spec = SPIN_FAULTS[name]
    system = _system(spec.scheme)
    auditor = SystemAuditor.attach(system, mode="raise")
    system.run()
    assert auditor.report.ok
    assert system.kernel.spin_segments > 0
    assert auditor.report.checks.get(SPIN, 0) > 0


@pytest.mark.parametrize("name", sorted(SPIN_FAULTS))
def test_collect_mode_reports_every_corrupted_collapse(name):
    """In collect mode the run completes and the report carries at
    least one violation from the target family's checks."""
    spec = SPIN_FAULTS[name]
    system = _system(spec.scheme)
    auditor = SystemAuditor.attach(system, mode="collect")
    inject(system, name)
    system.run()
    spin_violations = auditor.report.by_category(SPIN)
    assert spin_violations, f"{name}: no SPIN violations collected"
    assert any(v.check in spec.checks for v in spin_violations)


def test_spin_faults_require_the_spin_kernel():
    for name, spec in sorted(SPIN_FAULTS.items()):
        system = _system(spec.scheme, spin_kernel=False)
        with pytest.raises(RuntimeError):
            inject(system, name)
