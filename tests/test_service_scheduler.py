"""The sweep-service scheduler: cache-first serving, in-flight
deduplication (N concurrent identical requests cost one simulation),
retry/backoff/deadline budgets, and the run_batch facade the executor
delegates to."""

import asyncio

import pytest

from repro.runner import JobFailure, JobSpec, ResultCache
from repro.service import Scheduler, run_batch

pytestmark = pytest.mark.service

GOOD = JobSpec(program="fullconn", scale=0.05)
GOOD2 = JobSpec(program="qsort", scale=0.05)
FAULTY = JobSpec(program="does-not-exist", scale=0.05)


def _submit_many(scheduler, specs):
    try:
        return asyncio.run(scheduler.submit_many(specs))
    finally:
        scheduler.close()


class TestCacheFirst:
    def test_cold_then_warm(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        cold = _submit_many(Scheduler(cache=cache), [GOOD])
        assert cold[0].status == "ok"
        warm = _submit_many(Scheduler(cache=cache), [GOOD])
        assert warm[0].status == "hit"
        assert warm[0].outcome == cold[0].outcome
        assert warm[0].key == GOOD.cache_key()

    def test_metrics_account_hits_and_misses(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        sched = Scheduler(cache=cache)
        _submit_many(sched, [GOOD])
        sched2 = Scheduler(cache=cache)
        _submit_many(sched2, [GOOD, GOOD2])
        m = sched2.metrics
        assert m.requests == 2
        assert m.cache_hits == 1
        assert m.cache_misses == 1
        assert m.hit_rate == 0.5
        assert m.stage_latency["total"].total == 2

    def test_no_cache_scheduler_still_serves(self):
        outs = _submit_many(Scheduler(cache=None), [GOOD])
        assert outs[0].status == "ok"
        assert outs[0].outcome.program == "fullconn"


class TestDedup:
    """Acceptance: concurrent duplicate submissions of one cold cell
    run exactly one simulation; every requester gets the identical
    result object."""

    def test_concurrent_duplicates_simulate_once(self, tmp_path):
        # jobs=2 routes misses through the process pool, so the first
        # submission yields at the await and the duplicates genuinely
        # race it to the in-flight table
        sched = Scheduler(jobs=2, cache=ResultCache(tmp_path / "c"))
        outs = _submit_many(sched, [GOOD] * 4)
        assert sched.metrics.executed == 1  # exactly one simulation
        assert sched.metrics.dedup_attached == 3
        assert sorted(o.status for o in outs) == ["attached"] * 3 + ["ok"]
        owner = next(o for o in outs if o.status == "ok")
        for o in outs:
            assert o.outcome is owner.outcome  # the same object, shared
            assert o.key == GOOD.cache_key()

    def test_dedup_without_result_cache(self):
        sched = Scheduler(jobs=2, cache=None)
        outs = _submit_many(sched, [GOOD] * 3)
        assert sched.metrics.executed == 1
        assert sched.metrics.dedup_attached == 2
        assert len({id(o.outcome) for o in outs}) == 1

    def test_distinct_cells_do_not_dedup(self, tmp_path):
        sched = Scheduler(jobs=2, cache=ResultCache(tmp_path / "c"))
        outs = _submit_many(sched, [GOOD, GOOD2])
        assert sched.metrics.executed == 2
        assert sched.metrics.dedup_attached == 0
        assert {o.outcome.program for o in outs} == {"fullconn", "qsort"}

    def test_inflight_table_drains(self, tmp_path):
        sched = Scheduler(jobs=2, cache=ResultCache(tmp_path / "c"))
        _submit_many(sched, [GOOD] * 3)
        assert sched._inflight == {}
        assert sched.metrics.in_flight == 0
        assert sched.metrics.queue_depth == 0


class TestRetryBudgets:
    def test_failure_concludes_with_key_and_attempts(self):
        outs = _submit_many(Scheduler(retries=2), [FAULTY])
        out = outs[0]
        assert out.status == "failed"
        failure = out.outcome
        assert isinstance(failure, JobFailure)
        assert failure.attempts == 3
        assert failure.key == FAULTY.cache_key()
        # the cache key is part of the human-readable failure line, so
        # log lines correlate with manifest records and store paths
        assert failure.key[:12] in str(failure)

    def test_exponential_backoff_accumulates(self):
        sched = Scheduler(retries=3, backoff=0.01)
        _submit_many(sched, [FAULTY])
        # 0.01 + 0.02 + 0.04 between the four attempts
        assert sched.metrics.backoff_seconds == pytest.approx(0.07)
        assert sched.metrics.retries == 3

    def test_backoff_cap_bounds_the_delay(self):
        sched = Scheduler(retries=2, backoff=0.02, backoff_cap=0.03)
        _submit_many(sched, [FAULTY])
        assert sched.metrics.backoff_seconds == pytest.approx(0.02 + 0.03)

    def test_deadline_budget_stops_retrying(self):
        # unbounded retries, but the deadline fires before backoff
        # sleeps can: the job must fail with kind "deadline"
        sched = Scheduler(retries=1000, backoff=30.0, deadline=0.5)
        outs = _submit_many(sched, [FAULTY])
        failure = outs[0].outcome
        assert isinstance(failure, JobFailure)
        assert failure.kind == "deadline"
        assert "deadline budget" in failure.message
        assert sched.metrics.deadline_exceeded == 1
        assert sched.metrics.backoff_seconds == 0.0  # never actually slept

    def test_success_needs_no_budget(self):
        sched = Scheduler(retries=5, backoff=10.0, deadline=300.0)
        outs = _submit_many(sched, [GOOD])
        assert outs[0].status == "ok"
        assert outs[0].attempts == 1


class TestCellOutcome:
    def test_manifest_record_statuses(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        ok = _submit_many(Scheduler(cache=cache), [GOOD])[0]
        rec = ok.manifest_record()
        assert rec["status"] == "ok"
        assert rec["key"] == GOOD.cache_key()
        assert rec["result"] == ok.result_dict
        hit = _submit_many(Scheduler(cache=cache), [GOOD])[0]
        assert hit.manifest_record()["status"] == "cached"
        assert "result" not in hit.manifest_record()
        failed = _submit_many(Scheduler(), [FAULTY])[0]
        rec = failed.manifest_record()
        assert rec["status"] == "failed"
        assert rec["error"]["kind"] == "error"

    def test_status_snapshot(self, tmp_path):
        sched = Scheduler(cache=ResultCache(tmp_path / "c"), retries=1)
        _submit_many(sched, [GOOD])
        snap = sched.status()
        assert snap["jobs"] == 1 and snap["inline"] is True
        assert snap["metrics"]["executed"] == 1
        assert snap["cache"]["count"] == 1
        assert snap["cache"]["session"]["puts"] == 1


class TestRunBatchFacade:
    def test_duplicates_in_one_batch_cost_one_simulation(self, tmp_path):
        sched = Scheduler(jobs=2, cache=ResultCache(tmp_path / "c"))
        batch = run_batch([GOOD, GOOD, GOOD], scheduler=sched)
        sched.close()
        assert batch.stats.executed == 1
        assert batch.stats.cached == 2  # the attached requesters
        assert len({id(o) for o in batch.outcomes}) == 1

    def test_shared_scheduler_survives_batches(self, tmp_path):
        sched = Scheduler(cache=ResultCache(tmp_path / "c"))
        first = run_batch([GOOD], scheduler=sched)
        second = run_batch([GOOD], scheduler=sched)
        sched.close()
        assert first.stats.executed == 1
        assert second.stats.cached == 1
        assert sched.metrics.requests == 2

    def test_outcome_object_matches_run_jobs(self):
        from repro.runner import run_jobs

        assert run_batch([GOOD]).outcomes[0] == run_jobs([GOOD]).outcomes[0]
