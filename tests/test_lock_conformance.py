"""Conformance battery: every registered lock scheme, one contract.

Parametrized over the full ``repro.sync.LOCK_SCHEMES`` registry, so a
newly registered scheme is pulled into the battery automatically:

* mutual exclusion -- no two processors ever inside a critical section
  for the same lock at once;
* no lost wakeups -- every acquisition is eventually granted and the
  run terminates (a dropped grant deadlocks the machine);
* FIFO order where the scheme guarantees it (``cls.fifo``): with
  requests arriving in a known order, grants follow it;
* bounded unfairness for the test-and-set variants: no processor is
  starved out of any of its acquisitions within a heavily contended
  run;
* LockStats cross-accounting -- a raise-mode auditor rides every run,
  so the manager's statistics must agree with independently observed
  grants, transfers and waiter populations (and FIFO schemes must pass
  the shadow-queue and queue-node hand-off checks).
"""

import pytest

from repro.audit import SystemAuditor
from repro.consistency import SEQUENTIAL, WEAK
from repro.machine.system import System
from repro.sync import LOCK_SCHEMES, get_lock_manager
from tests.conftest import make_traceset, tiny_machine
from tests.test_locks_in_system import IntervalRecorder, contended_traceset

ALL_SCHEME_NAMES = sorted(LOCK_SCHEMES)
FIFO_SCHEMES = sorted(n for n, c in LOCK_SCHEMES.items() if c.fifo)
SPIN_SCHEMES = sorted(n for n, c in LOCK_SCHEMES.items() if not c.fifo)


def _run(ts, scheme, model=SEQUENTIAL, audit=True, n_procs=None):
    mgr = get_lock_manager(scheme)
    system = System(ts, tiny_machine(n_procs=n_procs or ts.n_procs), mgr, model)
    if audit:
        SystemAuditor.attach(system, mode="raise")
    return system, system.run()


def staggered_traceset(n_procs=4, lead=500):
    """Processor ``p`` computes ``p * lead`` cycles, then acquires: the
    requests reach the lock manager in strict processor order."""
    state = {}

    def builder(p):
        def fn(b, layout):
            if "lock" not in state:
                state["lock"] = layout.alloc_lock()
                state["sh"] = layout.alloc_shared(64)
                state["code"] = layout.alloc_code(64)
            la, sh, code = state["lock"], state["sh"], state["code"]
            b.block(4, 10 + p * lead, code)
            b.lock(0, la)
            b.block(4, 200, code)
            b.write(sh)
            b.unlock(0, la)

        return fn

    return make_traceset([builder(p) for p in range(n_procs)])


@pytest.mark.parametrize("scheme", ALL_SCHEME_NAMES)
class TestConformance:
    def test_mutual_exclusion_audited(self, scheme):
        ts = contended_traceset(n_procs=4, css=6)
        mgr = get_lock_manager(scheme)
        rec = IntervalRecorder(mgr)
        system = System(ts, tiny_machine(n_procs=4), mgr, SEQUENTIAL)
        SystemAuditor.attach(system, mode="raise")
        system.run()
        assert sum(len(v) for v in rec.intervals.values()) == 4 * 6
        rec.assert_mutual_exclusion()

    def test_no_lost_wakeups(self, scheme):
        # termination is the property: a dropped grant deadlocks the
        # machine and System.run raises
        ts = contended_traceset(n_procs=5, css=5)
        _, result = _run(ts, scheme)
        assert result.lock_stats.acquisitions == 5 * 5

    def test_weak_ordering_also_conforms(self, scheme):
        ts = contended_traceset(n_procs=3, css=4)
        _, result = _run(ts, scheme, model=WEAK)
        assert result.lock_stats.acquisitions == 12

    def test_stats_cross_accounting(self, scheme):
        """The raise-mode auditor's finalize() cross-checks LockStats
        against independently observed grants/transfers/waiters; any
        disagreement raises.  On top, the scheme's own ledger must
        balance: transfers never exceed acquisitions, and hold time is
        only recorded for completed critical sections."""
        ts = contended_traceset(n_procs=4, css=6)
        _, result = _run(ts, scheme)
        stats = result.lock_stats
        assert 0 <= stats.transfers <= stats.acquisitions
        assert stats.per_lock_acquisitions[0] == stats.acquisitions
        assert stats.hold_cycles_total > 0


@pytest.mark.parametrize("scheme", FIFO_SCHEMES)
def test_fifo_schemes_grant_in_request_order(scheme):
    """With request arrival strictly staggered, a FIFO scheme must
    grant in exactly that order."""
    ts = staggered_traceset(n_procs=4)
    mgr = get_lock_manager(scheme)
    rec = IntervalRecorder(mgr)
    system = System(ts, tiny_machine(n_procs=4), mgr, SEQUENTIAL)
    SystemAuditor.attach(system, mode="raise")
    system.run()
    grants = sorted(rec.intervals[0])  # (grant_time, release_time, proc)
    assert [p for _s, _e, p in grants] == [0, 1, 2, 3], (
        f"{scheme}: FIFO scheme granted out of request order: {grants}"
    )


@pytest.mark.parametrize("scheme", SPIN_SCHEMES)
def test_spin_schemes_bounded_unfairness(scheme):
    """T&S variants guarantee no order, but within a finite contended
    run no processor may be starved: everyone completes every one of
    its critical sections."""
    css = 8
    ts = contended_traceset(n_procs=4, css=css)
    mgr = get_lock_manager(scheme)
    rec = IntervalRecorder(mgr)
    system = System(ts, tiny_machine(n_procs=4), mgr, SEQUENTIAL)
    system.run()
    per_proc = {p: 0 for p in range(4)}
    for ivals in rec.intervals.values():
        for _s, _e, p in ivals:
            per_proc[p] += 1
    assert all(n == css for n in per_proc.values()), per_proc


def test_registry_covers_the_lock_zoo():
    """The registry is the single source of truth the CLI, the
    differential harness and this battery all enumerate."""
    assert {"queuing", "exact-queuing", "ttas", "tas", "mcs", "clh", "ticket", "backoff"} == set(LOCK_SCHEMES)
    for name, cls in LOCK_SCHEMES.items():
        assert cls.name == name
        assert isinstance(cls.fifo, bool)
