"""Mutation coverage for the invariant auditor.

Each registered fault (:mod:`repro.audit.faults`) corrupts exactly one
protocol obligation of the simulator; running the corrupted machine
under a raise-mode auditor must abort with a violation of the expected
category and one of the fault's acceptable check names.  This is the
self-test that keeps the sanitizer honest: a checker nobody can trip is
indistinguishable from no checker at all.
"""

import pytest

from repro.audit import AuditError, SystemAuditor
from repro.audit.faults import FAULTS, LOCK_FAULTS, inject
from repro.audit.report import LOCK
from repro.consistency import SEQUENTIAL
from repro.machine.config import MachineConfig
from repro.machine.system import System
from repro.sync import get_lock_manager
from repro.workloads import generate_trace

pytestmark = pytest.mark.audit

#: heavy lock contention plus shared-counter invalidation traffic --
#: every fault class has something to corrupt
_TS = {}


def _traceset():
    if "ts" not in _TS:
        _TS["ts"] = generate_trace("synthetic", scale=0.3, seed=11)
    return _TS["ts"]


def _build(lock_scheme):
    ts = _traceset()
    return System(
        ts,
        MachineConfig(n_procs=ts.n_procs),
        get_lock_manager(lock_scheme),
        SEQUENTIAL,
    )


def _run_faulted(name, lock_scheme):
    system = _build(lock_scheme)
    SystemAuditor.attach(system, mode="raise")
    spec = inject(system, name)
    with pytest.raises(AuditError) as exc:
        system.run()
    return spec, exc.value.violation


@pytest.mark.parametrize("name", sorted(FAULTS))
def test_fault_detected_with_right_category_and_check(name):
    spec, violation = _run_faulted(name, "queuing")
    assert violation.category == spec.category, (
        f"{name}: expected a {spec.category} violation, got {violation}"
    )
    assert violation.check in spec.checks, (
        f"{name}: check {violation.check!r} not in {sorted(spec.checks)}"
    )


@pytest.mark.parametrize("name", ["double-owner", "waiter-count-skew", "skip-invalidation"])
def test_faults_also_detected_under_spin_locks(name):
    """The lock checks must not depend on the FIFO shadow queue: the
    spin schemes route through the same funnel and the same stats."""
    spec, violation = _run_faulted(name, "ttas")
    assert violation.category == spec.category
    assert violation.check in spec.checks


@pytest.mark.parametrize("name", sorted(LOCK_FAULTS))
def test_lock_zoo_fault_detected(name):
    """Each lock-zoo fault corrupts its target scheme's internals
    (queue-node hand-off, ticket order, backoff wakeups) and the lock
    auditor must name it -- including the deadlock sweep for the lost
    wakeup, which turns a bare hang into a waiters-at-exit violation."""
    spec = LOCK_FAULTS[name]
    spec_injected, violation = _run_faulted(name, spec.scheme)
    assert spec_injected is spec
    assert violation.category == spec.category, (
        f"{name}: expected a {spec.category} violation, got {violation}"
    )
    assert violation.check in spec.checks, (
        f"{name}: check {violation.check!r} not in {sorted(spec.checks)}"
    )


def test_lost_backoff_wakeup_names_the_stranded_waiter():
    """The deadlock diagnostic beats the machine's bare RuntimeError:
    the violation says who is still waiting on which lock."""
    _, violation = _run_faulted("lost-backoff-wakeup", "backoff")
    assert violation.check == "waiters-at-exit"
    assert "deadlock" in violation.message
    assert "waiting" in str(violation)


def test_spurious_claim_is_a_queue_jump():
    """An early ownership claim (the CLH swap-decides idiom) is only
    legal on a free lock with an empty queue; claiming a held lock is
    exactly the queue jump the hand-off checker exists to catch."""
    system = _build("clh")
    SystemAuditor.attach(system, mode="raise")
    mgr = system.locks
    real = mgr.acquire
    armed = [True]

    def jumping(proc, lock_id, line, time, grant_cb, _real=real):
        st = mgr.locks.get(lock_id)
        if armed and st is not None and st.owner is not None:
            armed.clear()
            mgr.audit.on_lock_claim(lock_id, proc, time)
        _real(proc, lock_id, line, time, grant_cb)

    mgr.acquire = jumping
    with pytest.raises(AuditError) as exc:
        system.run()
    violation = exc.value.violation
    assert violation.category == LOCK
    assert violation.check == "queue-node-handoff"


def test_violation_carries_structured_context():
    """A violation is debuggable: it names the cycle and the actors."""
    _, violation = _run_faulted("double-owner", "queuing")
    assert violation.cycle >= 0
    assert violation.proc >= 0
    assert violation.lock_id >= 0
    text = str(violation)
    assert "mutual-exclusion" in text
    assert "cycle" in text


def test_clean_run_raises_nothing():
    """Control: the same machine without a fault runs to completion with
    every check evaluated and none failed."""
    system = _build("queuing")
    auditor = SystemAuditor.attach(system, mode="raise")
    system.run()
    assert auditor.report.ok
    assert sum(auditor.report.checks.values()) > 0


def test_collect_mode_accumulates_instead_of_raising():
    system = _build("queuing")
    auditor = SystemAuditor.attach(system, mode="collect")
    inject(system, "waiter-count-skew")
    system.run()  # must not raise
    report = auditor.report
    assert not report.ok
    assert any(v.check == "stats-waiter-count" for v in report.violations)
    assert "stats-waiter-count" in report.summary()


def test_unknown_fault_name_rejected():
    system = _build("queuing")
    with pytest.raises(KeyError):
        inject(system, "no-such-fault")


def test_double_attach_rejected():
    system = _build("queuing")
    SystemAuditor.attach(system, mode="collect")
    with pytest.raises(RuntimeError):
        SystemAuditor.attach(system, mode="collect")
