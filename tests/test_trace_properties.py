"""Property-based tests for the trace substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.builder import TraceBuilder
from repro.trace.encode import dumps_traceset, loads_traceset
from repro.trace.layout import AddressLayout
from repro.trace.records import TraceSet
from repro.trace.stats import compute_trace_stats
from repro.trace.validate import validate_trace, validate_traceset


@st.composite
def trace_programs(draw, max_ops=60):
    """A random but *valid* per-processor emission program: a list of
    op descriptors interpreted by ``emit`` below."""
    n_ops = draw(st.integers(1, max_ops))
    ops = []
    held: list[int] = []
    n_locks = draw(st.integers(1, 4))
    for _ in range(n_ops):
        choices = ["block", "read", "write"]
        if len(held) < n_locks:
            choices.append("lock")
        if held:
            choices.append("unlock")
        kind = draw(st.sampled_from(choices))
        if kind == "block":
            ops.append(("block", draw(st.integers(1, 30)), draw(st.integers(1, 100))))
        elif kind in ("read", "write"):
            ops.append(
                (
                    kind,
                    draw(st.integers(0, 4000)),
                    draw(st.integers(1, 12)),
                    draw(st.booleans()),
                )
            )
        elif kind == "lock":
            # acquire in ascending id order only: a global lock ordering
            # keeps randomly generated multi-processor programs
            # deadlock-free (arbitrary orders can and do deadlock, which
            # the simulator detects -- see the deadlock-detection test)
            floor = max(held) + 1 if held else 0
            free = [l for l in range(floor, n_locks) if l not in held]
            if not free:
                continue
            lid = draw(st.sampled_from(free))
            held.append(lid)
            ops.append(("lock", lid))
        else:
            lid = draw(st.sampled_from(held))
            held.remove(lid)
            ops.append(("unlock", lid))
    for lid in reversed(held):
        ops.append(("unlock", lid))
    return ops


def emit(ops, builder: TraceBuilder, layout: AddressLayout, proc: int, shared_base, code, locks):
    for op in ops:
        if op[0] == "block":
            builder.block(op[1], op[2], code)
        elif op[0] in ("read", "write"):
            _, off, reps, shared = op
            addr = shared_base + off * 4 if shared else (0x8000_0000 + proc * 0x0100_0000 + off * 4)
            getattr(builder, op[0])(addr, reps)
        elif op[0] == "lock":
            builder.lock(op[1], locks[op[1]])
        else:
            builder.unlock(op[1], locks[op[1]])


def build_traceset(programs):
    n = len(programs)
    layout = AddressLayout(n)
    code = layout.alloc_code(256)
    shared_base = layout.alloc_shared(32768)
    locks = [layout.alloc_lock() for _ in range(4)]
    traces = []
    for p, ops in enumerate(programs):
        b = TraceBuilder(p, layout, program="prop")
        emit(ops, b, layout, p, shared_base, code, locks)
        traces.append(b.finish())
    return TraceSet(traces, layout, program="prop")


class TestTraceProperties:
    @given(trace_programs())
    @settings(max_examples=60, deadline=None)
    def test_builder_output_always_validates(self, ops):
        ts = build_traceset([ops])
        validate_trace(ts[0])

    @given(st.lists(trace_programs(max_ops=25), min_size=1, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_tracesets_validate_cross_processor(self, programs):
        validate_traceset(build_traceset(programs))

    @given(trace_programs())
    @settings(max_examples=40, deadline=None)
    def test_encode_roundtrip_is_lossless(self, ops):
        ts = build_traceset([ops])
        ts2 = loads_traceset(dumps_traceset(ts))
        assert np.array_equal(ts[0].records, ts2[0].records)
        assert ts2.program == ts.program

    @given(trace_programs())
    @settings(max_examples=60, deadline=None)
    def test_stats_invariants(self, ops):
        ts = build_traceset([ops])
        s = compute_trace_stats(ts[0])
        assert 0 <= s.shared_refs <= s.data_refs <= s.all_refs
        assert s.nested_locks <= s.lock_pairs
        assert s.total_held <= s.work_cycles
        assert 0 <= s.pct_time_held <= 100
        if s.lock_pairs == 0:
            assert s.avg_held == 0
        else:
            assert s.avg_held >= 0
        # total held cannot exceed the sum of individual holds
        assert s.total_held <= s.avg_held * s.lock_pairs + 1e-9

    @given(trace_programs(max_ops=30))
    @settings(max_examples=30, deadline=None)
    def test_stats_are_deterministic(self, ops):
        a = compute_trace_stats(build_traceset([ops])[0])
        b = compute_trace_stats(build_traceset([ops])[0])
        assert a == b
