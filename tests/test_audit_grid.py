"""The auditor's acceptance gate: the full grid, audited, at scale.

Every (program, lock scheme, consistency model) cell of the paper's grid
runs at default scale with a collect-mode invariant auditor riding the
fast run of the differential pair.  Three things are pinned at once:

* **zero violations** -- the real workloads never trip a coherence, bus,
  lock or accounting invariant;
* **observation-only auditing** -- the audited fast run must still
  serialize byte-identically to the unaudited reference run, so the
  auditor provably never perturbs a result;
* **non-vacuity** -- every cell must evaluate a healthy number of
  checks in every registered family (a sanitizer that checks nothing
  also reports nothing).
"""

import pytest

from repro.audit.report import CATEGORIES
from repro.testing import LOCK_SCHEMES, MODELS, SUITE_PROGRAMS, differential_check

pytestmark = pytest.mark.audit


@pytest.mark.repro
@pytest.mark.parametrize("program", SUITE_PROGRAMS)
def test_grid_cells_clean_under_audit(program):
    reports = differential_check(programs=(program,), scale=1.0, seed=1991, audit=True)
    assert len(reports) == len(LOCK_SCHEMES) * len(MODELS)
    bad = [r for r in reports if not r.equal]
    if bad:
        detail = "\n".join(f"{r.label}:\n  " + "\n  ".join(r.diffs) for r in bad)
        pytest.fail(
            f"auditing perturbed {len(bad)} cell(s):\n{detail}", pytrace=False
        )
    for r in reports:
        assert r.violations == 0, f"{r.label}: {r.violations} invariant violation(s)"
        # ~thousands of checks per cell at default scale; a collapse to
        # near zero means the hooks came unwired
        assert r.audit_checks > 1000, (
            f"{r.label}: auditor only evaluated {r.audit_checks} checks"
        )


def _quiet_loop(b, layout):
    """A long private hit loop: after the cold pass every record is a
    silent hit, so the machine goes quiet and the segment kernel
    collapses whole spans -- the phase the kernel auditor checks."""
    base = layout.alloc_private(b.proc, 64 * 16)
    code = layout.alloc_code(64)
    for _ in range(50):
        b.block(4, 4, code)
        for i in range(64):
            if i % 4 == 3:
                b.write(base + i * 16)
            else:
                b.read(base + i * 16)


def _contended_loop():
    """Two processors hammering one shared lock, the critical sections
    private hit loops: the holder's silent bounces collapse while the
    other processor provably waits -- the phase the spin auditor
    checks.  The lock is allocated once and shared by both programs."""
    state = {}

    def prog(b, layout):
        lock = state.setdefault("lock", layout.alloc_lock())
        base = layout.alloc_private(b.proc, 8 * 16)
        code = layout.alloc_code(16)
        for j in range(8):  # warm the working set: later reads all hit
            b.read(base + 16 * j)
        for _ in range(4):
            b.lock(0, lock)
            for j in range(200):
                b.block(2, 2, code)
                b.read(base + 16 * (j % 8))
            b.unlock(0, lock)

    return prog


@pytest.mark.parametrize("lock_scheme", LOCK_SCHEMES)
@pytest.mark.parametrize("model", MODELS)
def test_audit_families_all_engage(lock_scheme, model):
    """Per-family check counts are nonzero -- every invariant family
    actually exercised its checks.  The four protocol families engage on
    a small contended run; the segment-kernel family needs the opposite
    (a machine-quiet private phase), and the spin-kernel family needs a
    lock-wait phase with certified waiters, so a quiet and a contended
    crafted workload ride the same configuration."""
    from repro.consistency import get_model
    from repro.machine.config import MachineConfig
    from repro.machine.system import System
    from repro.sync import get_lock_manager
    from repro.workloads import generate_trace

    from .conftest import make_traceset

    contended = _contended_loop()
    checks: dict[str, int] = {}
    for ts in (
        generate_trace("pverify", scale=0.1, seed=7),
        make_traceset([_quiet_loop, _quiet_loop], program="quiet-loop"),
        make_traceset([contended, contended], program="contended-loop"),
    ):
        system = System(
            ts,
            MachineConfig(n_procs=ts.n_procs, audit=True),
            get_lock_manager(lock_scheme),
            get_model(model),
        )
        system.run()
        report = system.audit.report
        assert not report.violations, report.summary()
        for category, n in report.checks.items():
            checks[category] = checks.get(category, 0) + n
    for category in CATEGORIES:
        assert checks.get(category, 0) > 0, (
            f"{category} auditor never evaluated a check: {checks}"
        )
