"""Unit tests for the memory module (buffering, reservation, blocking)."""

import pytest

from repro.machine.buffers import DATA_RETURN, READ_MISS, WRITEBACK, BusOp
from repro.machine.config import MemoryConfig
from repro.machine.engine import Engine
from repro.machine.memory import Memory


def make(**kw):
    engine = Engine()
    mem = Memory(engine, MemoryConfig(**kw))
    kicks = []
    mem._bus_kick = lambda t: kicks.append(t)
    return engine, mem, kicks


def read_op(line=1, proc=0):
    return BusOp(READ_MISS, line, proc)


def wb_op(line=1, proc=0):
    return BusOp(WRITEBACK, line, proc)


class TestService:
    def test_read_produces_data_return_after_access_time(self):
        engine, mem, kicks = make()
        mem.reserve()
        mem.arrive(read_op(), 0)
        engine.run()
        ret = mem.port.peek()
        assert ret is not None
        assert ret.kind == DATA_RETURN
        assert ret.orig.kind == READ_MISS
        assert engine.now == 3  # access_cycles
        assert mem.reads_serviced == 1
        assert kicks  # bus re-arbitration requested

    def test_writeback_produces_no_return(self):
        engine, mem, _ = make()
        mem.reserve()
        mem.arrive(wb_op(), 0)
        engine.run()
        assert mem.port.peek() is None
        assert mem.writes_serviced == 1

    def test_requests_serviced_serially(self):
        engine, mem, _ = make()
        mem.reserve()
        mem.reserve()
        mem.arrive(read_op(1), 0)
        mem.arrive(read_op(2), 0)
        engine.run()
        assert engine.now == 6  # 3 + 3, one at a time
        assert mem.reads_serviced == 2


class TestInputBuffer:
    def test_reservation_fills_input_space(self):
        _, mem, _ = make(input_buffer=2)
        assert mem.can_accept()
        mem.reserve()
        assert mem.can_accept()
        mem.reserve()
        assert not mem.can_accept()

    def test_overcommit_rejected(self):
        _, mem, _ = make(input_buffer=1)
        mem.reserve()
        with pytest.raises(RuntimeError, match="over-committed"):
            mem.reserve()

    def test_arrival_without_reservation_rejected(self):
        _, mem, _ = make()
        with pytest.raises(RuntimeError, match="reservation"):
            mem.arrive(read_op(), 0)

    def test_space_frees_when_service_starts(self):
        engine, mem, _ = make(input_buffer=1)
        mem.reserve()
        mem.arrive(read_op(), 0)  # starts service immediately: queue empty
        assert mem.can_accept()


class TestOutputBuffer:
    def test_service_blocks_when_output_full(self):
        engine, mem, _ = make(output_buffer=1)
        mem.reserve()
        mem.reserve()
        mem.arrive(read_op(1), 0)
        mem.arrive(read_op(2), 0)
        engine.run()
        # first read done at t=3 and parks in the output buffer; the
        # second cannot start until that return drains.
        assert mem.reads_serviced == 1
        # drain the output: the stalled service resumes
        mem.port.pop()
        mem.release_output(engine.now)
        engine.run()
        assert mem.reads_serviced == 2

    def test_writeback_can_start_with_full_output(self):
        engine, mem, _ = make(output_buffer=1)
        mem.reserve()
        mem.reserve()
        mem.arrive(read_op(1), 0)
        mem.arrive(wb_op(2), 0)
        engine.run()
        # read parks in output; write-back needs no output slot
        assert mem.writes_serviced == 1

    def test_pending_accounting(self):
        engine, mem, _ = make()
        assert mem.pending() == 0
        mem.reserve()
        assert mem.pending() == 1
        mem.arrive(read_op(), 0)
        engine.run()
        assert mem.pending() == 1  # the data return waiting in the output
        mem.port.pop()
        mem.release_output(engine.now)
        assert mem.pending() == 0
