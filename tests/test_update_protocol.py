"""Tests for the write-update coherence protocol (extension)."""

import pytest

from repro.consistency import SEQUENTIAL, WEAK
from repro.machine.buffers import UPDATE
from repro.machine.cache import SHARED
from repro.machine.coherence import ILLINOIS, get_protocol
from repro.machine.config import MachineConfig
from repro.machine.system import System
from repro.sync import QueuingLockManager
from tests.conftest import make_traceset, tiny_machine


def run(build_fns, model=SEQUENTIAL, coherence="update"):
    ts = make_traceset(build_fns)
    cfg = tiny_machine(n_procs=ts.n_procs, coherence=coherence)
    system = System(ts, cfg, QueuingLockManager(), model)
    return system.run(), system


class TestRegistry:
    def test_lookup(self):
        assert get_protocol("illinois") is ILLINOIS
        assert get_protocol("update").write_update
        assert get_protocol("firefly").write_update  # alias

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown coherence"):
            get_protocol("dragonfly")

    def test_config_validates_protocol(self):
        with pytest.raises(ValueError):
            MachineConfig(coherence="nope")
        assert MachineConfig(coherence="update").coherence == "update"


class TestUpdateSemantics:
    def _shared_writer(self):
        """p0 and p1 both read a line (SHARED everywhere), then p0
        writes it repeatedly."""
        addr = {}

        def p0(b, layout):
            addr["sh"] = layout.alloc_shared(16)
            b.read(addr["sh"])
            code = layout.alloc_code(16)
            b.block(1, 100, code)
            for _ in range(4):
                b.write(addr["sh"])

        def p1(b, layout):
            code = layout.alloc_code(32)
            b.block(1, 30, code + 16)
            b.read(addr["sh"])
            b.block(1, 800, code + 16)

        return [p0, p1], addr

    def test_sharers_keep_their_copies(self):
        fns, addr = self._shared_writer()
        result, system = run(fns)
        line = addr["sh"] >> 4
        # under Illinois p1 would be INVALID here; under update both
        # caches still hold the line SHARED
        assert system.caches[0].probe(line) == SHARED
        assert system.caches[1].probe(line) == SHARED
        assert result.invalidations_received == 0

    def test_every_shared_write_hits_the_bus(self):
        fns, _ = self._shared_writer()
        result, system = run(fns)
        assert result.bus_op_counts[UPDATE] == 4
        assert system.memory.writes_serviced == 4

    def test_illinois_pays_once_then_writes_silently(self):
        fns, _ = self._shared_writer()
        upd, _ = run(fns, coherence="update")
        inv, _ = run(fns, coherence="illinois")
        # invalidate: one UPGRADE then silent M writes; update: 4 broadcasts
        from repro.machine.buffers import UPGRADE

        assert inv.bus_op_counts.get(UPGRADE, 0) == 1
        assert inv.bus_op_counts.get(UPDATE, 0) == 0
        assert upd.bus_op_counts[UPDATE] == 4

    def test_reader_never_misses_after_updates(self):
        """The update protocol's payoff: the second reader's later reads
        hit, because its copy was patched, not destroyed."""
        addr = {}

        def p0(b, layout):
            addr["sh"] = layout.alloc_shared(16)
            b.read(addr["sh"])
            code = layout.alloc_code(16)
            b.block(1, 100, code)
            b.write(addr["sh"])
            b.block(1, 500, code)

        def p1(b, layout):
            code = layout.alloc_code(32)
            b.block(1, 30, code + 16)
            b.read(addr["sh"])
            b.block(1, 400, code + 16)
            b.read(addr["sh"])  # Illinois: coherence miss; update: hit

        upd, _ = run([p0, p1], coherence="update")
        inv, _ = run([p0, p1], coherence="illinois")
        assert upd.read_misses < inv.read_misses

    def test_exclusive_writes_stay_silent(self):
        def fn(b, layout):
            sh = layout.alloc_shared(16)
            b.read(sh)  # E from memory
            for _ in range(5):
                b.write(sh)

        result, _ = run([fn])
        assert result.bus_op_counts.get(UPDATE, 0) == 0

    def test_works_under_weak_ordering(self):
        fns, _ = self._shared_writer()
        result, _ = run(fns, model=WEAK)
        assert result.bus_op_counts[UPDATE] == 4
        for m in result.proc_metrics:
            assert m.completion_time == m.work_cycles + m.total_stall

    def test_migratory_data_pays_forever(self):
        """The protocol's known weakness: producer/consumer migration
        keeps lines shared, so the writer never escapes the bus."""
        addr = {}

        def writer(b, layout):
            addr["sh"] = layout.alloc_shared(16)
            code = layout.alloc_code(16)
            b.read(addr["sh"])
            for _ in range(16):
                b.write(addr["sh"])
                b.block(1, 8, code)

        def reader(b, layout):
            code = layout.alloc_code(32)
            b.block(1, 20, code + 16)
            b.read(addr["sh"])
            b.block(1, 2000, code + 16)

        upd, _ = run([writer, reader], coherence="update")
        inv, _ = run([writer, reader], coherence="illinois")
        # the first few writes are silent (line still EXCLUSIVE until the
        # reader's snoop downgrades it); every write after that broadcasts
        assert upd.bus_op_counts[UPDATE] >= 10
        assert upd.bus_busy_cycles > inv.bus_busy_cycles
