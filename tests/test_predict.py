"""The contention predictor (repro.sync.predict) and its committed
validation table.

The predictor is closed-form and the simulator deterministic, so the
predictor-vs-simulation table in tests/golden/predictor_validation.json
is exactly reproducible: this suite regenerates every row and compares
bit-for-bit, then asserts the accuracy acceptance -- mean relative
error of the predicted lock-cycle share <= 25% across the validated
grid (and the same for the lock bus-traffic share).  docs/locks.md
renders the same table; regenerate both together after an intentional
model change:

    PYTHONPATH=src python -m pytest tests/test_predict.py --regen-predictor
"""

import json
from pathlib import Path

import pytest

from repro.machine.system import simulate
from repro.sync import LOCK_SCHEMES, get_lock_manager
from repro.sync.predict import (
    REL_ERR_FLOOR,
    calibrate,
    contention_report,
    observed_bus_share,
    observed_lock_share,
    predict,
    profile_locks,
    relative_error,
    validate,
)
from repro.workloads import generate_trace
from tests.conftest import make_traceset, tiny_machine

TABLE = Path(__file__).parent / "golden" / "predictor_validation.json"

#: the validated grid: every registered scheme on a storm workload
#: (synthetic), a real program with moderate contention (qsort) and a
#: nearly lock-free one (pverify) -- prediction must hold at all three
#: contention regimes
GRID_PROGRAMS = ("synthetic", "qsort", "pverify")
GRID_SCALE = 0.25
GRID_SEED = 1991
ACCEPT_MEAN_REL_ERR = 0.25


def _trace(program):
    return generate_trace(program, scale=GRID_SCALE, seed=GRID_SEED)


# ---------------------------------------------------------------------------
# Unit behaviour
# ---------------------------------------------------------------------------


def _two_lock_traceset():
    state = {}

    def fn(b, layout):
        if "l0" not in state:
            state["l0"] = layout.alloc_lock()
            state["l1"] = layout.alloc_lock()
            state["sh"] = layout.alloc_shared(64)
            state["code"] = layout.alloc_code(64)
        l0, l1, sh, code = state["l0"], state["l1"], state["sh"], state["code"]
        for _ in range(3):
            b.block(4, 50, code)
            b.lock(0, l0)
            b.block(4, 20, code)
            b.write(sh)
            b.lock(1, l1)  # nested
            b.block(4, 10, code)
            b.write(sh + 16)
            b.unlock(1, l1)
            b.unlock(0, l0)

    return make_traceset([fn, fn, fn])


class TestProfiles:
    def test_profile_counts_and_nesting(self):
        profs = profile_locks(_two_lock_traceset())
        assert set(profs) == {0, 1}
        assert profs[0].acquisitions == 9
        assert profs[0].n_procs == 3
        assert profs[0].nested_frac == 0.0
        assert profs[1].nested_frac == 1.0
        # lock 1 is held strictly inside lock 0
        assert profs[1].mean_hold < profs[0].mean_hold

    def test_gaps_are_think_time(self):
        profs = profile_locks(_two_lock_traceset())
        # between two CSes of lock 0 lies the 50-cycle compute block
        assert profs[0].mean_gap == pytest.approx(50.0)


class TestPredictionShape:
    def test_contended_lock_predicts_waiting(self):
        ts = _two_lock_traceset()
        base = simulate(ts, tiny_machine(n_procs=3), get_lock_manager("queuing"))
        cal = calibrate(ts, base, tiny_machine(n_procs=3))
        pred = predict(ts, "queuing", cal, tiny_machine(n_procs=3))
        assert pred.lock_share > 0
        assert pred.stall_cycles > 0
        by_lock = {p.lock_id: p for p in pred.per_lock}
        # three procs hammer lock 0 back to back: contention is certain
        assert by_lock[0].contended_frac > 0.3
        assert by_lock[0].wait > 0

    def test_single_proc_lock_never_contends(self):
        def fn(b, layout):
            la = layout.alloc_lock()
            code = layout.alloc_code(64)
            b.block(4, 30, code)
            b.lock(0, la)
            b.block(4, 10, code)
            b.unlock(0, la)

        ts = make_traceset([fn])
        base = simulate(ts, tiny_machine(n_procs=1), get_lock_manager("queuing"))
        cal = calibrate(ts, base, tiny_machine(n_procs=1))
        for scheme in sorted(LOCK_SCHEMES):
            pred = predict(ts, scheme, cal, tiny_machine(n_procs=1))
            (lp,) = pred.per_lock
            assert lp.contended_frac == 0.0, scheme
            assert lp.waiters == 0.0, scheme

    def test_relative_error_floor(self):
        assert relative_error(1.0, 0.0) == pytest.approx(1.0 / REL_ERR_FLOOR)
        assert relative_error(50.0, 40.0) == pytest.approx(0.25)


# ---------------------------------------------------------------------------
# The committed validation table
# ---------------------------------------------------------------------------


def _regen_rows():
    rows = []
    for program in GRID_PROGRAMS:
        rows.extend(validate(_trace(program), sorted(LOCK_SCHEMES)))
    return rows


def test_validation_table_reproduces_and_meets_acceptance(request):
    regen = request.config.getoption("--regen-predictor")
    rows = _regen_rows()
    if regen:
        TABLE.write_text(json.dumps(rows, indent=1) + "\n")
    committed = json.loads(TABLE.read_text())
    assert rows == committed, (
        "predictor validation table drifted from tests/golden/"
        "predictor_validation.json; regenerate with --regen-predictor "
        "and review the diff"
    )
    assert len(rows) == len(GRID_PROGRAMS) * len(LOCK_SCHEMES)
    lock_errs = [r["lock_rel_err"] for r in rows]
    bus_errs = [r["bus_rel_err"] for r in rows]
    assert sum(lock_errs) / len(lock_errs) <= ACCEPT_MEAN_REL_ERR
    assert sum(bus_errs) / len(bus_errs) <= ACCEPT_MEAN_REL_ERR


def test_observed_shares_are_percentages():
    ts = _trace("synthetic")
    sim = simulate(ts, None, get_lock_manager("ttas"))
    assert 0.0 <= observed_lock_share(sim) <= 100.0
    assert 0.0 <= observed_bus_share(sim) <= 100.0


# ---------------------------------------------------------------------------
# Contention report
# ---------------------------------------------------------------------------


class TestContentionReport:
    def test_padded_critical_section_is_shrinkable(self):
        """Work before/after the only conflicting access inside the CS
        is reported as shedable hold time."""
        state = {}

        def fn(b, layout):
            if "lock" not in state:
                state["lock"] = layout.alloc_lock()
                state["sh"] = layout.alloc_shared(64)
                state["code"] = layout.alloc_code(64)
            la, sh, code = state["lock"], state["sh"], state["code"]
            for _ in range(3):
                b.lock(0, la)
                b.block(4, 90, code)  # shrinkable prefix
                b.write(sh)  # the contended access
                b.block(4, 90, code)  # shrinkable suffix
                b.unlock(0, la)
                b.block(4, 30, code)

        ts = make_traceset([fn, fn])
        (v,) = contention_report(ts)
        assert v.verdict == "shrinkable"
        assert v.conflict_lines == 1
        assert v.shrinkable_frac > 0.5

    def test_private_only_lock_flagged(self):
        """A lock whose critical sections touch no cross-processor
        shared data arbitrates nothing."""
        state = {}

        def fn(proc):
            def build(b, layout):
                if "lock" not in state:
                    state["lock"] = layout.alloc_lock()
                    state["code"] = layout.alloc_code(64)
                la, code = state["lock"], state["code"]
                mine = layout.alloc_private(proc, 64)
                for _ in range(2):
                    b.lock(0, la)
                    b.block(4, 40, code)
                    b.write(mine)
                    b.unlock(0, la)

            return build

        ts = make_traceset([fn(0), fn(1)])
        (v,) = contention_report(ts)
        assert v.verdict == "no-shared-conflict"
        assert v.conflict_lines == 0
        assert v.shrinkable_frac == 1.0

    def test_tight_section_not_flagged(self):
        """A CS that is nothing but conflicting accesses has no slack."""
        state = {}

        def fn(b, layout):
            if "lock" not in state:
                state["lock"] = layout.alloc_lock()
                state["sh"] = layout.alloc_shared(16)
                state["code"] = layout.alloc_code(64)
            la, sh, code = state["lock"], state["sh"], state["code"]
            for _ in range(3):
                b.block(4, 60, code)
                b.lock(0, la)
                b.read(sh)
                b.write(sh)
                b.unlock(0, la)

        ts = make_traceset([fn, fn])
        (v,) = contention_report(ts)
        assert v.verdict == "tight"
        assert v.shrinkable_frac < 0.25

    def test_simulation_result_folds_in(self):
        ts = _trace("synthetic")
        sim = simulate(ts, None, get_lock_manager("queuing"))
        verdicts = contention_report(ts, result=sim)
        assert verdicts
        assert all(v.transfers >= 0 for v in verdicts)
