"""Property-based tests for the runtime invariant auditor.

Random multi-processor lock/sharing programs (the same generator the
trace substrate uses) are pushed through full simulations with the
auditor attached.  Two properties must hold for *every* generated
program, under both lock-scheme families and both interpreter engines:

* the auditor finds nothing -- the simulator upholds its invariants on
  arbitrary programs, not just the six curated workloads;
* the auditor changes nothing -- the RunResult of an audited run
  serializes identically to the unaudited run.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audit import SystemAuditor
from repro.consistency import get_model
from repro.machine.config import MachineConfig
from repro.machine.system import System
from repro.runner.serialize import result_to_dict
from repro.sync import get_lock_manager
from tests.test_trace_properties import build_traceset, trace_programs

pytestmark = pytest.mark.audit


def _run(ts, lock_scheme, model, fast, audited):
    system = System(
        ts,
        MachineConfig(n_procs=ts.n_procs, fast_path=fast, batch_records=4),
        get_lock_manager(lock_scheme),
        get_model(model),
    )
    if audited:
        auditor = SystemAuditor.attach(system, mode="collect")
    result = system.run()
    canon = json.loads(json.dumps(result_to_dict(result), sort_keys=True))
    return canon, (auditor.report if audited else None)


class TestAuditProperties:
    @given(st.lists(trace_programs(max_ops=25), min_size=2, max_size=4))
    @settings(max_examples=25, deadline=None)
    def test_random_programs_are_invariant_clean(self, programs):
        ts = build_traceset(programs)
        for lock_scheme in ("queuing", "ttas"):
            for fast in (True, False):
                _, report = _run(ts, lock_scheme, "sc", fast, audited=True)
                assert report.ok, report.summary()
                assert sum(report.checks.values()) > 0

    @given(st.lists(trace_programs(max_ops=25), min_size=2, max_size=4))
    @settings(max_examples=25, deadline=None)
    def test_auditing_never_changes_the_result(self, programs):
        ts = build_traceset(programs)
        for lock_scheme in ("queuing", "ttas"):
            for model in ("sc", "wo"):
                audited, report = _run(ts, lock_scheme, model, True, audited=True)
                plain, _ = _run(ts, lock_scheme, model, True, audited=False)
                assert report.ok, report.summary()
                assert audited == plain

    @given(st.lists(trace_programs(max_ops=20), min_size=2, max_size=3))
    @settings(max_examples=15, deadline=None)
    def test_weak_ordering_and_exact_queuing_also_clean(self, programs):
        """The less-travelled corners: WO's write buffering and the
        exact-queuing scheme's extra bus transactions."""
        ts = build_traceset(programs)
        for lock_scheme in ("exact-queuing", "tas"):
            _, report = _run(ts, lock_scheme, "wo", True, audited=True)
            assert report.ok, report.summary()
