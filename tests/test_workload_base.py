"""Tests for the workload-authoring framework (ProcContext, SharedLock,
the coordinated runner, and the Presto runtime model)."""

import numpy as np
import pytest

from repro.trace.builder import TraceBuilder
from repro.trace.layout import LINE_SIZE, AddressLayout
from repro.trace.records import IBLOCK, LOCK, READ, UNLOCK, WRITE
from repro.trace.stats import compute_trace_stats
from repro.workloads.base import ProcContext, SharedLock, Workload, run_coordinated
from repro.workloads.presto import PrestoRuntime


@pytest.fixture
def ctx():
    layout = AddressLayout(2)
    b = TraceBuilder(0, layout, program="t")
    return ProcContext(0, b, layout, np.random.default_rng(0), sites={}, cpi=3.0)


class TestProcContext:
    def test_step_emits_block_then_data(self, ctx):
        sh = ctx.layout.alloc_shared(64)
        ctx.step("site", 10, reads=[sh], writes=[(sh + 16, 4)])
        t = ctx.b.finish()
        assert [int(k) for k in t.records["kind"]] == [IBLOCK, READ, WRITE]
        assert t.records[0]["cycles"] == 30  # 10 instr x cpi 3.0
        assert t.records[2]["arg"] == 4

    def test_same_site_reuses_code_address(self, ctx):
        ctx.compute("loop", 8)
        ctx.compute("loop", 8)
        t = ctx.b.finish()
        assert t.records[0]["addr"] == t.records[1]["addr"]

    def test_different_sites_get_disjoint_code(self, ctx):
        ctx.compute("a", 50)
        ctx.compute("b", 50)
        t = ctx.b.finish()
        a, b = int(t.records[0]["addr"]), int(t.records[1]["addr"])
        assert abs(a - b) >= 50 * 4

    def test_sites_shared_across_processors(self):
        layout = AddressLayout(2)
        sites = {}
        rng = np.random.default_rng(0)
        ctxs = [
            ProcContext(p, TraceBuilder(p, layout), layout, rng, sites)
            for p in range(2)
        ]
        ctxs[0].compute("f", 6)
        ctxs[1].compute("f", 6)
        t0, t1 = ctxs[0].b.finish(), ctxs[1].b.finish()
        assert t0.records[0]["addr"] == t1.records[0]["addr"]

    def test_lock_tracking(self, ctx):
        lk = SharedLock(ctx.layout, "l")
        ctx.lock(lk)
        assert ctx.holding == (lk,)
        ctx.unlock(lk)
        assert ctx.holding == ()

    def test_minimum_one_cycle(self, ctx):
        ctx.cpi = 0.01
        ctx.compute("tiny", 1)
        assert ctx.b.finish().records[0]["cycles"] == 1


class TestSharedLock:
    def test_ids_deterministic_per_layout(self):
        a = SharedLock(AddressLayout(2))
        b = SharedLock(AddressLayout(2))
        assert a.lock_id == b.lock_id
        assert a.addr == b.addr

    def test_sequential_locks_distinct(self):
        layout = AddressLayout(2)
        a, b = SharedLock(layout), SharedLock(layout)
        assert a.lock_id != b.lock_id
        assert b.addr - a.addr == LINE_SIZE


class TestRunCoordinated:
    def test_round_robin_interleaving(self):
        log = []

        def worker(name, n):
            for i in range(n):
                log.append((name, i))
                yield

        run_coordinated([worker("a", 3), worker("b", 2)])
        assert log == [("a", 0), ("b", 0), ("a", 1), ("b", 1), ("a", 2)]

    def test_empty_worker_list(self):
        run_coordinated([])

    def test_unequal_lengths_drain(self):
        done = []

        def worker(name, n):
            for _ in range(n):
                yield
            done.append(name)

        run_coordinated([worker("short", 1), worker("long", 5)])
        assert set(done) == {"short", "long"}


class TestPrestoRuntime:
    def _ctx(self, layout, p=0):
        return ProcContext(
            p, TraceBuilder(p, layout), layout, np.random.default_rng(0), sites={}
        )

    def test_dispatch_produces_nested_pair(self):
        layout = AddressLayout(2)
        presto = PrestoRuntime(layout)
        ctx = self._ctx(layout)
        presto.dispatch(ctx)
        stats = compute_trace_stats(ctx.b.finish())
        assert stats.lock_pairs == 2
        assert stats.nested_locks == 1  # the queue lock inside the scheduler

    def test_dispatch_lock_order(self):
        layout = AddressLayout(2)
        presto = PrestoRuntime(layout)
        ctx = self._ctx(layout)
        presto.dispatch(ctx)
        rec = ctx.b.finish().records
        sync = [(int(r["kind"]), int(r["arg"])) for r in rec if r["kind"] in (LOCK, UNLOCK)]
        sched, queue = presto.sched_lock.lock_id, presto.queue_lock.lock_id
        assert sync == [
            (LOCK, sched),
            (LOCK, queue),
            (UNLOCK, queue),
            (UNLOCK, sched),
        ]

    def test_enqueue_takes_inner_lock_alone(self):
        layout = AddressLayout(2)
        presto = PrestoRuntime(layout)
        ctx = self._ctx(layout)
        presto.enqueue(ctx)
        stats = compute_trace_stats(ctx.b.finish())
        assert stats.lock_pairs == 1
        assert stats.nested_locks == 0

    def test_spawn_allocates_shared_tcb(self):
        layout = AddressLayout(2)
        presto = PrestoRuntime(layout)
        ctx = self._ctx(layout)
        presto.spawn(ctx)
        stats = compute_trace_stats(ctx.b.finish())
        # Presto's allocator: everything lands in the shared heap
        assert stats.shared_refs == stats.data_refs

    def test_hold_time_scales_with_work_instr(self):
        layout = AddressLayout(2)
        presto = PrestoRuntime(layout)
        short, long_ = self._ctx(layout, 0), self._ctx(layout, 1)
        presto.dispatch(short, work_instr=10)
        presto.dispatch(long_, work_instr=30)
        s = compute_trace_stats(short.b.finish())
        l = compute_trace_stats(long_.b.finish())
        assert l.avg_held > 2 * s.avg_held


class TestWorkloadScaling:
    def test_scaled_floors_at_minimum(self):
        class W(Workload):
            name = "w"

            def build(self, ctxs, layout, rng):
                pass

        w = W(scale=0.0001)
        assert w.scaled(100) == 1
        assert w.scaled(100, minimum=5) == 5
        assert W(scale=2.0).scaled(100) == 200
