"""Tests for the combinational-circuit model behind Pverify."""

import numpy as np
import pytest

from repro.workloads.circuit import Circuit


@pytest.fixture
def rng():
    return np.random.default_rng(5)


@pytest.fixture
def circuit(rng):
    return Circuit(rng, n_inputs=32, n_gates=512, n_outputs=24)


class TestStructure:
    def test_fanins_point_backward(self, circuit):
        for g in range(circuit.n_inputs, circuit.n_gates):
            a, b = circuit.fanin[g]
            assert a < g and b < g

    def test_inputs_have_no_fanin(self, circuit):
        assert (circuit.fanin[: circuit.n_inputs] == 0).all()

    def test_outputs_are_last_gates(self, circuit):
        assert circuit.outputs[-1] == circuit.n_gates - 1
        assert len(circuit.outputs) == 24

    def test_parameter_validation(self, rng):
        with pytest.raises(ValueError):
            Circuit(rng, n_inputs=10, n_gates=10)
        with pytest.raises(ValueError):
            Circuit(rng, n_inputs=10, n_gates=20, n_outputs=11)


class TestCones:
    def test_cone_contains_output(self, circuit):
        out = circuit.outputs[0]
        assert circuit.cone(out)[0] == out

    def test_cone_closed_under_fanin(self, circuit):
        out = circuit.outputs[3]
        cone = set(circuit.cone(out))
        for g in cone:
            if g >= circuit.n_inputs:
                a, b = circuit.fanin[g]
                assert a in cone and b in cone

    def test_cone_reaches_primary_inputs(self, circuit):
        cone = circuit.cone(circuit.outputs[0])
        assert any(g < circuit.n_inputs for g in cone)

    def test_cone_cached(self, circuit):
        out = circuit.outputs[1]
        assert circuit.cone(out) is circuit.cone(out)

    def test_cones_overlap_near_inputs(self, circuit):
        """The structural fact Pverify's locality relies on: distinct
        output cones share input-side logic."""
        a, b = circuit.outputs[0], circuit.outputs[10]
        assert circuit.overlap(a, b) > 0.05

    def test_cone_sample_bounded(self, circuit, rng):
        out = circuit.outputs[2]
        sample = circuit.cone_sample(out, 10, rng)
        assert len(sample) <= 10
        assert set(sample) <= set(circuit.cone(out))
        assert sample[0] == out  # output-side head preserved

    def test_cone_sample_small_cone_returned_whole(self, rng):
        c = Circuit(rng, n_inputs=4, n_gates=8, n_outputs=1)
        out = c.outputs[0]
        assert c.cone_sample(out, 50, rng) == c.cone(out)

    def test_deterministic_given_rng(self):
        a = Circuit(np.random.default_rng(9), n_gates=256, n_inputs=16, n_outputs=8)
        b = Circuit(np.random.default_rng(9), n_gates=256, n_inputs=16, n_outputs=8)
        assert (a.fanin == b.fanin).all()
