"""Tests for the footprint/sharing analysis."""

import pytest

from repro.trace.footprint import proc_footprint, sharing_profile
from repro.workloads import generate_trace
from tests.conftest import make_traceset


class TestProcFootprint:
    def test_counts_unique_lines(self):
        def fn(b, layout):
            sh = layout.alloc_shared(256)
            b.read(sh)  # line 0 of the allocation
            b.read(sh + 4)  # same line
            b.read(sh + 16)  # next line
            b.write(sh + 32, reps=8)  # two lines (8 words)

        fp = proc_footprint(make_traceset([fn])[0])
        assert fp.data_lines == 4
        assert fp.shared_data_lines == 4
        assert fp.code_lines == 0

    def test_rep_records_expand_across_lines(self):
        def fn(b, layout):
            sh = layout.alloc_shared(1024)
            b.read(sh, reps=64)  # 64 words = 16 lines

        fp = proc_footprint(make_traceset([fn])[0])
        assert fp.data_lines == 16

    def test_private_lines_not_shared(self):
        def fn(b, layout):
            b.read(layout.alloc_private(0, 64))
            b.read(layout.alloc_shared(64))

        fp = proc_footprint(make_traceset([fn])[0])
        assert fp.data_lines == 2
        assert fp.shared_data_lines == 1

    def test_code_lines_counted(self):
        def fn(b, layout):
            code = layout.alloc_code(256)
            b.block(12, 30, code)  # 48 bytes = 3 lines

        fp = proc_footprint(make_traceset([fn])[0])
        assert fp.code_lines == 3
        assert fp.total_lines == 3

    def test_fits_in_cache(self):
        def small(b, layout):
            b.read(layout.alloc_shared(64))

        fp = proc_footprint(make_traceset([small])[0])
        assert fp.fits_in(4096)
        assert not fp.fits_in(0)

    def test_empty_trace(self):
        fp = proc_footprint(make_traceset([lambda b, l: None])[0])
        assert fp.total_lines == 0


class TestSharingProfile:
    def test_actively_shared_detection(self):
        addr = {}

        def p0(b, layout):
            addr["common"] = layout.alloc_shared(16)
            addr["solo"] = layout.alloc_shared(16)
            b.read(addr["common"])
            b.read(addr["solo"])

        def p1(b, layout):
            b.read(addr["common"])

        prof = sharing_profile(make_traceset([p0, p1]))
        assert prof.shared_lines == 2
        assert prof.actively_shared == 1
        assert prof.active_fraction == pytest.approx(0.5)

    def test_write_shared_requires_cross_proc_touch(self):
        addr = {}

        def writer(b, layout):
            addr["a"] = layout.alloc_shared(16)
            addr["b"] = layout.alloc_shared(16)
            b.write(addr["a"])  # later read by p1 -> write-shared
            b.write(addr["b"])  # never touched by others -> not

        def reader(b, layout):
            b.read(addr["a"])

        prof = sharing_profile(make_traceset([writer, reader]))
        assert prof.write_shared == 1

    def test_benchmark_contrast_qsort_vs_topopt(self):
        """The explanatory payload: Qsort's shared lines are actively
        write-shared (migration), Topopt's shared lines are read-only
        and its footprint fits the cache."""
        qs = sharing_profile(generate_trace("qsort", scale=0.2))
        to = sharing_profile(generate_trace("topopt", scale=0.2))
        assert qs.active_fraction > 0.5
        assert qs.write_shared > 50 * max(1, to.write_shared)
        # topopt per-proc footprints fit the 64KB cache; qsort's exceed it
        assert all(f.fits_in() for f in to.footprints)

    def test_presto_shared_is_not_all_active(self):
        """Table 1 says ~all Presto data is 'shared'; the profile shows
        much of it is touched by a single processor (Presto's allocator,
        not real communication)."""
        prof = sharing_profile(generate_trace("grav", scale=0.2))
        assert prof.shared_lines > 0
        assert prof.active_fraction < 0.9
