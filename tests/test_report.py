"""Tests for the table renderers and Figure 1."""

import pytest

from repro.core.report import (
    PAPER_TABLES,
    render_architecture,
    render_table,
    render_table1,
    render_table2,
)
from repro.machine.config import BusConfig, CacheConfig, MachineConfig, MemoryConfig


class TestGenericRenderer:
    def test_columns_aligned(self):
        text = render_table(["A", "Blong"], [["x", 1], ["yy", 22]])
        lines = [l for l in text.splitlines() if "|" in l]
        assert len(lines) == 3  # header + 2 rows
        assert len({line.index("|") for line in lines}) == 1

    def test_title_included(self):
        assert render_table(["A"], [["x"]], title="T").startswith("T\n")

    def test_none_renders_na(self):
        assert "N/A" in render_table(["A"], [[None]])

    def test_numbers_formatted_with_separators(self):
        assert "1,234,567" in render_table(["A"], [[1234567]])

    def test_floats_two_decimals(self):
        assert "3.14" in render_table(["A"], [[3.14159]])


class TestPaperTables:
    def test_all_eight_tables_present(self):
        assert set(PAPER_TABLES) == set(range(1, 9))

    def test_table_1_has_all_six_programs(self):
        assert set(PAPER_TABLES[1]) == {
            "grav",
            "pdsa",
            "fullconn",
            "pverify",
            "qsort",
            "topopt",
        }

    def test_contention_tables_exclude_topopt(self):
        for n in (4, 5, 6, 8):
            assert "topopt" not in PAPER_TABLES[n]

    def test_published_values_sanity(self):
        # spot checks against the paper text
        assert PAPER_TABLES[3]["grav"]["util"] == 32.6
        assert PAPER_TABLES[4]["pdsa"]["waiters"] == 6.18
        assert PAPER_TABLES[7]["qsort"]["diff"] == 0.02
        assert PAPER_TABLES[2]["pverify"]["avg_held"] == 3642


class TestIdealRenderers:
    def test_table1_renders_all_programs(self):
        from repro.core.ideal import ideal_stats
        from repro.workloads import generate_trace

        ideals = [ideal_stats(generate_trace(p, scale=0.02)) for p in ("grav", "topopt")]
        text = render_table1(ideals)
        assert "grav" in text and "topopt" in text
        assert "Work Cycles" in text

    def test_table2_shows_na_for_lockless(self):
        from repro.core.ideal import ideal_stats
        from repro.workloads import generate_trace

        ideals = [ideal_stats(generate_trace("topopt", scale=0.02))]
        text = render_table2(ideals)
        assert "N/A" in text


class TestArchitectureDiagram:
    def test_default_matches_paper_parameters(self):
        text = render_architecture()
        assert "64KB" in text
        assert "16B lines" in text
        assert "Illinois" in text
        assert "split-transaction" in text
        assert "round-robin" in text
        assert "= 6 cycles" in text  # the paper's miss accounting

    def test_parameterized_by_config(self):
        cfg = MachineConfig(
            n_procs=4,
            cache=CacheConfig(size_bytes=32 * 1024),
            memory=MemoryConfig(access_cycles=5),
        )
        text = render_architecture(cfg)
        assert "32KB" in text
        assert "access: 5 cycles" in text
        assert "4 processors" in text

    def test_miss_cycle_formula_consistent(self):
        cfg = MachineConfig(memory=MemoryConfig(access_cycles=7))
        assert f"= {cfg.uncontended_miss_cycles} cycles" in render_architecture(cfg)


class TestConfigDerived:
    def test_uncontended_miss_is_six_cycles(self):
        assert MachineConfig().uncontended_miss_cycles == 6

    def test_line_data_cycles(self):
        assert MachineConfig().line_data_cycles == 2
        assert BusConfig(width_bytes=16).data_cycles(16) == 1

    def test_with_procs(self):
        cfg = MachineConfig(n_procs=12)
        assert cfg.with_procs(9).n_procs == 9
        assert cfg.with_procs(9).cache == cfg.cache

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            MachineConfig(n_procs=0)
        with pytest.raises(ValueError):
            MachineConfig(cachebus_buffer_depth=0)
        with pytest.raises(ValueError):
            MachineConfig(batch_records=0)
