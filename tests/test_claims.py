"""Tests for the claims registry."""

import pytest

from repro.core.claims import CLAIMS, check_all_claims, render_claim_report
from repro.core.experiment import run_suite


class TestRegistryShape:
    def test_sixteen_claims_registered(self):
        assert len(CLAIMS) == 16

    def test_unique_identifiers(self):
        idents = [c.ident for c in CLAIMS]
        assert len(set(idents)) == len(idents)

    def test_every_claim_cites_a_section(self):
        for c in CLAIMS:
            assert c.section.startswith("§")
            assert len(c.statement) > 20

    def test_sections_covered(self):
        sections = {c.section for c in CLAIMS}
        assert {"§3.1", "§3.2", "§4.2", "§5", "§2.3"} <= sections


@pytest.mark.repro
class TestClaimsAtScale:
    @pytest.fixture(scope="class")
    def results(self):
        suite = run_suite(scale=1.0, seed=1991)
        return check_all_claims(suite)

    def test_all_claims_hold_at_default_scale(self, results):
        failing = [r.claim.ident for r in results if not r.holds]
        assert not failing, f"claims failing: {failing}"

    def test_every_claim_produces_evidence(self, results):
        for r in results:
            assert r.evidence
            assert len(r.evidence) > 10

    def test_report_renders_scorecard(self, results):
        text = render_claim_report(results)
        assert "16/16" in text or "claims hold" in text
        for r in results:
            assert r.claim.ident in text


class TestClaimsSmallScale:
    """At tiny scales the *contention* claims are not expected to hold;
    the machinery must still run and report rather than crash."""

    def test_runs_at_tiny_scale(self):
        suite = run_suite(scale=0.05, seed=1)
        results = check_all_claims(suite)
        assert len(results) == 16
        # structural claims are scale-independent
        by_id = {r.claim.ident: r for r in results}
        assert by_id["C15"].holds  # Presto shared allocation
        assert by_id["C16"].holds  # Pverify's long holds
