"""Tests for the Trace/TraceSet containers and record model."""

import numpy as np
import pytest

from repro.trace.layout import AddressLayout
from repro.trace.records import (
    IBLOCK,
    KIND_NAMES,
    LOCK,
    READ,
    RECORD_DTYPE,
    REP_STRIDE,
    UNLOCK,
    WRITE,
    Trace,
    TraceSet,
)


def raw(rows, proc=0, program="p"):
    rec = np.zeros(len(rows), dtype=RECORD_DTYPE)
    for i, row in enumerate(rows):
        rec[i] = row
    return Trace(rec, proc=proc, program=program)


class TestRecordModel:
    def test_dtype_fields(self):
        assert set(RECORD_DTYPE.names) == {"kind", "addr", "arg", "cycles"}

    def test_kind_names_complete(self):
        assert KIND_NAMES[IBLOCK] == "IBLOCK"
        assert len(KIND_NAMES) == 6

    def test_rep_stride_is_word(self):
        assert REP_STRIDE == 4


class TestTrace:
    def test_len_and_views(self):
        t = raw([(READ, 0x100, 1, 0), (WRITE, 0x200, 2, 0)])
        assert len(t) == 2
        assert t.addrs.tolist() == [0x100, 0x200]
        assert t.args.tolist() == [1, 2]

    def test_mask_multiple_kinds(self):
        t = raw(
            [
                (READ, 0x100, 1, 0),
                (IBLOCK, 0x2000, 4, 8),
                (WRITE, 0x200, 1, 0),
            ]
        )
        data = t.mask(READ, WRITE)
        assert data.tolist() == [True, False, True]

    def test_count_kind(self):
        t = raw([(READ, 0, 1, 0)] * 3 + [(WRITE, 0, 1, 0)])
        assert t.count_kind(READ) == 3
        assert t.count_kind(WRITE) == 1
        assert t.count_kind(LOCK) == 0

    def test_dtype_coercion(self):
        rec = np.zeros(1, dtype=RECORD_DTYPE)
        t = Trace(rec.astype(RECORD_DTYPE), proc=3)
        assert t.proc == 3


class TestTraceSet:
    def _ts(self, n=3):
        layout = AddressLayout(n)
        return TraceSet(
            [raw([(READ, 0x1000_0000, 1, 0)], proc=p) for p in range(n)],
            layout,
            program="x",
            meta={"k": 1},
        )

    def test_iteration_and_indexing(self):
        ts = self._ts()
        assert len(ts) == 3
        assert ts[1].proc == 1
        assert [t.proc for t in ts] == [0, 1, 2]

    def test_total_records(self):
        assert self._ts().total_records() == 3

    def test_program_defaults_from_traces(self):
        layout = AddressLayout(1)
        ts = TraceSet([raw([], program="inner")], layout)
        assert ts.program == "inner"

    def test_meta_preserved(self):
        assert self._ts().meta == {"k": 1}
