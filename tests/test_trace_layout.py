"""Unit tests for the address-space layout."""

import pytest

from repro.trace.layout import (
    CODE_BASE,
    LINE_SIZE,
    LOCK_BASE,
    PRIVATE_BASE,
    PRIVATE_SPAN,
    SHARED_BASE,
    AddressLayout,
)


class TestAllocation:
    def test_shared_alloc_is_line_aligned(self):
        layout = AddressLayout(4)
        a = layout.alloc_shared(100)
        assert a % LINE_SIZE == 0
        assert a >= SHARED_BASE

    def test_shared_allocs_are_disjoint(self):
        layout = AddressLayout(4)
        a = layout.alloc_shared(100)
        b = layout.alloc_shared(100)
        assert b >= a + 100

    def test_private_allocs_land_in_owner_region(self):
        layout = AddressLayout(4)
        for p in range(4):
            a = layout.alloc_private(p, 64)
            assert layout.owner_of_private(a) == p

    def test_private_regions_disjoint_across_procs(self):
        layout = AddressLayout(3)
        addrs = [layout.alloc_private(p, 1024) for p in range(3)]
        assert len(set(a // PRIVATE_SPAN for a in addrs)) == 3

    def test_lock_allocs_one_line_apart(self):
        layout = AddressLayout(2)
        a = layout.alloc_lock()
        b = layout.alloc_lock()
        assert b - a == LINE_SIZE
        assert AddressLayout.is_lock_addr(a)

    def test_code_alloc(self):
        layout = AddressLayout(2)
        a = layout.alloc_code(256)
        assert AddressLayout.is_code(a)
        assert a >= CODE_BASE

    def test_custom_alignment(self):
        layout = AddressLayout(2)
        a = layout.alloc_shared(10, align=64)
        assert a % 64 == 0

    def test_shared_overflow_raises(self):
        layout = AddressLayout(1)
        with pytest.raises(MemoryError):
            layout.alloc_shared(LOCK_BASE - SHARED_BASE + 1)

    def test_private_overflow_raises(self):
        layout = AddressLayout(1)
        with pytest.raises(MemoryError):
            layout.alloc_private(0, PRIVATE_SPAN + 16)

    def test_zero_procs_rejected(self):
        with pytest.raises(ValueError):
            AddressLayout(0)


class TestClassification:
    def test_regions_are_mutually_exclusive(self):
        layout = AddressLayout(2)
        samples = {
            "code": layout.alloc_code(64),
            "shared": layout.alloc_shared(64),
            "lock": layout.alloc_lock(),
            "private": layout.alloc_private(1, 64),
        }
        a = samples["code"]
        assert AddressLayout.is_code(a)
        assert not AddressLayout.is_shared(a)
        assert not AddressLayout.is_private(a)
        a = samples["shared"]
        assert AddressLayout.is_shared(a)
        assert not AddressLayout.is_lock_addr(a)
        assert not AddressLayout.is_code(a)
        a = samples["lock"]
        assert AddressLayout.is_shared(a)  # lock words count as shared data
        assert AddressLayout.is_lock_addr(a)
        a = samples["private"]
        assert AddressLayout.is_private(a)
        assert not AddressLayout.is_shared(a)

    def test_owner_of_private_rejects_shared(self):
        layout = AddressLayout(2)
        with pytest.raises(ValueError):
            layout.owner_of_private(SHARED_BASE)

    def test_private_base_boundary(self):
        assert AddressLayout.is_private(PRIVATE_BASE)
        assert not AddressLayout.is_shared(PRIVATE_BASE)
        assert AddressLayout.is_shared(PRIVATE_BASE - 1)


class TestSerialization:
    def test_roundtrip_preserves_breaks(self):
        layout = AddressLayout(3)
        layout.alloc_shared(1000)
        layout.alloc_code(500)
        layout.alloc_lock()
        layout.alloc_private(2, 128)
        clone = AddressLayout.from_dict(layout.to_dict())
        assert clone.to_dict() == layout.to_dict()
        # further allocations continue from the same point
        assert clone.alloc_shared(16) == layout.alloc_shared(16)
        assert clone.alloc_lock() == layout.alloc_lock()
