"""Coherence scenarios: Illinois protocol behaviour across processors.

Two-processor hand-built traces checked against the protocol rules of
§2.2 / Archibald & Baer: cache-to-cache supply, E-on-memory-fill,
invalidation on write, write-back interception, upgrade conversion.
"""

import pytest

from repro.consistency import SEQUENTIAL, WEAK
from repro.machine.cache import EXCLUSIVE, INVALID, MODIFIED, SHARED
from repro.machine.system import System
from repro.sync import QueuingLockManager
from tests.conftest import make_traceset, tiny_machine


def run_system(build_fns, model=SEQUENTIAL, **cfg_kw):
    ts = make_traceset(build_fns)
    cfg = tiny_machine(n_procs=ts.n_procs, **cfg_kw)
    system = System(ts, cfg, QueuingLockManager(), model)
    result = system.run()
    return result, system


SH = None  # populated per test via layout


class TestFillStates:
    def test_memory_fill_loads_exclusive(self):
        addr = {}

        def p0(b, layout):
            addr["sh"] = layout.alloc_shared(16)
            b.read(addr["sh"])

        result, system = run_system([p0])
        line = addr["sh"] >> 4
        assert system.caches[0].probe(line) == EXCLUSIVE

    def test_second_reader_gets_shared_and_downgrades_supplier(self):
        addr = {}

        def p0(b, layout):
            addr["sh"] = layout.alloc_shared(16)
            b.read(addr["sh"])

        def p1(b, layout):
            # long warmup so p1's read happens after p0's fill
            code = layout.alloc_code(16)
            b.block(1, 200, code)
            b.read(addr["sh"])

        result, system = run_system([p0, p1])
        line = addr["sh"] >> 4
        assert system.caches[0].probe(line) == SHARED
        assert system.caches[1].probe(line) == SHARED
        assert system.caches[0].counters.c2c_supplied == 1

    def test_write_miss_fills_modified(self):
        addr = {}

        def p0(b, layout):
            addr["sh"] = layout.alloc_shared(16)
            b.write(addr["sh"])

        result, system = run_system([p0])
        line = addr["sh"] >> 4
        assert system.caches[0].probe(line) == MODIFIED


class TestInvalidation:
    def test_write_invalidates_other_copy(self):
        addr = {}

        def p0(b, layout):
            addr["sh"] = layout.alloc_shared(16)
            b.read(addr["sh"])
            code = layout.alloc_code(16)
            b.block(1, 400, code)

        def p1(b, layout):
            code = layout.alloc_code(32)
            b.block(1, 100, code + 16)
            b.write(addr["sh"])

        result, system = run_system([p0, p1])
        line = addr["sh"] >> 4
        assert system.caches[0].probe(line) == INVALID
        assert system.caches[1].probe(line) == MODIFIED
        assert system.caches[0].counters.invalidations_received == 1

    def test_upgrade_write_hit_on_shared(self):
        """Both read (S everywhere), then one writes: an invalidation
        signal, not a data transfer."""
        addr = {}

        def p0(b, layout):
            addr["sh"] = layout.alloc_shared(16)
            b.read(addr["sh"])
            code = layout.alloc_code(16)
            b.block(1, 300, code)
            b.write(addr["sh"])  # upgrade S->M

        def p1(b, layout):
            code = layout.alloc_code(32)
            b.block(1, 50, code + 16)
            b.read(addr["sh"])
            b.block(1, 500, code + 16)

        result, system = run_system([p0, p1])
        line = addr["sh"] >> 4
        assert system.caches[0].probe(line) == MODIFIED
        assert system.caches[1].probe(line) == INVALID
        # the write counted as a hit (line was resident SHARED)
        assert result.write_hits >= 1
        assert result.write_misses == 0

    def test_dirty_supplier_updates_memory_on_read(self):
        """Illinois: a read miss served by a MODIFIED line also updates
        memory; both end SHARED."""
        addr = {}

        def p0(b, layout):
            addr["sh"] = layout.alloc_shared(16)
            b.write(addr["sh"])
            code = layout.alloc_code(16)
            b.block(1, 400, code)

        def p1(b, layout):
            code = layout.alloc_code(32)
            b.block(1, 100, code + 16)
            b.read(addr["sh"])

        result, system = run_system([p0, p1])
        line = addr["sh"] >> 4
        assert system.caches[0].probe(line) == SHARED
        assert system.caches[1].probe(line) == SHARED


class TestUpgradeConversion:
    def test_lost_upgrade_becomes_write_miss(self):
        """§4.1: two processors write-hit the same SHARED line; the first
        invalidation converts the other's into a write miss.

        Built deterministically: both caches hold the line SHARED and
        both upgrades sit queued when arbitration starts."""
        from repro.machine.buffers import UPGRADE, BusOp

        ts = make_traceset([lambda b, l: None, lambda b, l: None])
        system = System(ts, tiny_machine(n_procs=2), QueuingLockManager(), WEAK)
        line = 77
        system.caches[0].install(line, SHARED)
        system.caches[1].install(line, SHARED)
        for p in (0, 1):
            op = BusOp(UPGRADE, line, p)
            system.buffers[p].push(op)
            system.procs[p].outstanding += 1
            system.procs[p].pending_upgrades.add(line)
        system.bus.kick(0)
        system.engine.run()
        assert system.upgrade_conversions == 1
        states = [c.probe(line) for c in system.caches]
        # the converted write miss re-fetched the line MODIFIED; the
        # first upgrader lost its copy to the RFO's invalidation
        assert states.count(MODIFIED) == 1
        assert states.count(INVALID) == 1


class TestWritebackInterception:
    def test_snoop_hits_dirty_line_in_buffer(self):
        """'If a dirty line is in the buffer to be written-back, it is
        visible to the cache coherence mechanism' (§2.2)."""
        from repro.machine.buffers import WRITEBACK, BusOp

        addr = {}

        def p0(b, layout):
            addr["sh"] = layout.alloc_shared(16)
            b.read(addr["sh"])

        ts = make_traceset([p0, lambda b, l: None])
        cfg = tiny_machine(n_procs=2)
        system = System(ts, cfg, QueuingLockManager(), SEQUENTIAL)
        # plant a dirty line in proc 1's write-back buffer
        line = addr["sh"] >> 4
        wb = BusOp(WRITEBACK, line, 1)
        system.buffers[1].push(wb)
        system.procs[1].outstanding_wb += 1
        result = system.run()
        # proc 0's miss was served from the buffer: WB cancelled,
        # nothing read from memory
        assert wb.cancelled
        assert system.memory.reads_serviced == 0
        assert system.caches[0].probe(line) == SHARED


class TestBusAccounting:
    def test_bus_busy_while_transfers_happen(self):
        def fn(b, layout):
            sh = layout.alloc_shared(1024)
            for i in range(16):
                b.read(sh + i * 16)

        result, system = run_system([fn])
        assert result.bus_busy_cycles > 0
        assert result.bus_busy_cycles <= result.run_time

    def test_op_counts_recorded(self):
        def fn(b, layout):
            sh = layout.alloc_shared(64)
            b.read(sh)
            b.write(sh + 16)

        from repro.machine.buffers import READ_MISS, RFO

        result, _ = run_system([fn])
        assert result.bus_op_counts[READ_MISS] == 1
        assert result.bus_op_counts[RFO] == 1
