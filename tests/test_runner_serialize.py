"""RunResult JSON serialization must be a lossless round trip: the
runner ships every parallel worker's result and every cached result
through this layer, so ``from_json(to_json(r)) == r`` exactly."""

import pytest

from repro.machine.config import (
    BusConfig,
    CacheConfig,
    MachineConfig,
    MemoryConfig,
)
from repro.machine.metrics import ProcMetrics
from repro.runner import (
    JobSpec,
    machine_from_dict,
    machine_to_dict,
    result_from_dict,
    result_from_json,
    result_to_dict,
    result_to_json,
)
from repro.workloads.registry import BENCHMARK_ORDER

#: small but non-trivial scales; every workload exercises locks and, for
#: grav/topopt, barriers
SCALES = {p: 0.05 for p in BENCHMARK_ORDER}


@pytest.fixture(scope="module")
def results():
    return {
        p: JobSpec(program=p, scale=SCALES[p], seed=1991).run()
        for p in BENCHMARK_ORDER
    }


class TestRoundTripAllWorkloads:
    @pytest.mark.parametrize("program", BENCHMARK_ORDER)
    def test_equal_after_round_trip(self, results, program):
        r = results[program]
        assert result_from_json(result_to_json(r)) == r

    @pytest.mark.parametrize("program", BENCHMARK_ORDER)
    def test_every_field_preserved(self, results, program):
        import dataclasses

        r = results[program]
        r2 = result_from_dict(result_to_dict(r))
        for f in dataclasses.fields(r):
            if not f.compare:
                # diagnostics: profiling counters, deliberately excluded
                # from serialization (see RunResult) -- they may differ
                # between byte-identical runs, so persisting them would
                # poison the cache and golden-fixture comparisons
                continue
            assert getattr(r2, f.name) == getattr(r, f.name), f.name

    @pytest.mark.parametrize("program", BENCHMARK_ORDER)
    def test_per_processor_detail_preserved(self, results, program):
        r = results[program]
        r2 = result_from_json(result_to_json(r))
        assert len(r2.proc_metrics) == len(r.proc_metrics)
        for m, m2 in zip(r.proc_metrics, r2.proc_metrics):
            for name in ProcMetrics.__slots__:
                assert getattr(m2, name) == getattr(m, name), name

    def test_derived_metrics_survive(self, results):
        r = results["grav"]
        r2 = result_from_json(result_to_json(r))
        assert r2.avg_utilization == r.avg_utilization
        assert r2.stall_pct_lock == r.stall_pct_lock
        assert r2.lock_stats.avg_waiters_at_transfer == (
            r.lock_stats.avg_waiters_at_transfer
        )
        assert r2.bus_utilization == r.bus_utilization

    def test_int_keyed_maps_restored_with_int_keys(self, results):
        r = results["pdsa"]
        r2 = result_from_json(result_to_json(r))
        assert r.lock_stats.per_lock_acquisitions  # pdsa locks heavily
        assert all(
            isinstance(k, int) for k in r2.lock_stats.per_lock_acquisitions
        )
        assert all(isinstance(k, int) for k in r2.bus_op_counts)
        assert r2.bus_op_counts == r.bus_op_counts


class TestProcMetricsEquality:
    def test_equal_when_fields_match(self):
        a, b = ProcMetrics(0), ProcMetrics(0)
        a.work_cycles = b.work_cycles = 7
        assert a == b

    def test_unequal_on_any_field(self):
        a, b = ProcMetrics(0), ProcMetrics(0)
        b.stall_lock = 1
        assert a != b

    def test_dict_round_trip(self):
        m = ProcMetrics(3)
        m.work_cycles, m.stall_miss, m.completion_time = 11, 4, 20
        assert ProcMetrics.from_dict(m.as_dict()) == m


class TestMachineConfigSerialization:
    def test_default_round_trip(self):
        cfg = MachineConfig()
        assert MachineConfig.from_dict(cfg.to_dict()) == cfg

    def test_custom_round_trip(self):
        cfg = MachineConfig(
            n_procs=5,
            cache=CacheConfig(size_bytes=16 * 1024, assoc=4, write_policy="writethrough"),
            bus=BusConfig(width_bytes=4),
            memory=MemoryConfig(access_cycles=9),
            cachebus_buffer_depth=2,
            batch_records=1,
            coherence="update",
        )
        assert MachineConfig.from_dict(cfg.to_dict()) == cfg

    def test_none_tolerant_wrappers(self):
        assert machine_to_dict(None) is None
        assert machine_from_dict(None) is None
        cfg = MachineConfig(n_procs=3)
        assert machine_from_dict(machine_to_dict(cfg)) == cfg
