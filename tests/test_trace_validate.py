"""Tests for trace validation: every invariant violation is caught."""

import numpy as np
import pytest

from repro.trace.builder import TraceBuilder
from repro.trace.layout import AddressLayout
from repro.trace.records import (
    BARRIER,
    IBLOCK,
    LOCK,
    READ,
    RECORD_DTYPE,
    UNLOCK,
    Trace,
    TraceSet,
)
from repro.trace.validate import (
    TraceValidationError,
    validate_trace,
    validate_traceset,
)


def raw_trace(rows, proc=0):
    rec = np.zeros(len(rows), dtype=RECORD_DTYPE)
    for i, (kind, addr, arg, cycles) in enumerate(rows):
        rec[i] = (kind, addr, arg, cycles)
    return Trace(rec, proc=proc)


CODE = 0x2000
SHARED = 0x1000_0000
LOCKA = 0x2000_0000
PRIV0 = 0x8000_0000
PRIV1 = 0x8100_0000


class TestValidTraces:
    def test_good_trace_passes(self):
        t = raw_trace(
            [
                (IBLOCK, CODE, 4, 8),
                (READ, SHARED, 2, 0),
                (LOCK, LOCKA, 1, 0),
                (READ, SHARED, 1, 0),
                (UNLOCK, LOCKA, 1, 0),
            ]
        )
        validate_trace(t)

    def test_builder_output_always_passes(self):
        layout = AddressLayout(2)
        b = TraceBuilder(0, layout)
        code = layout.alloc_code(64)
        la = layout.alloc_lock()
        b.block(3, 9, code)
        b.lock(5, la)
        b.write(layout.alloc_shared(32), reps=4)
        b.unlock(5, la)
        validate_trace(b.finish())


class TestInvalidRecords:
    def test_unknown_kind(self):
        t = raw_trace([(99, CODE, 1, 1)])
        with pytest.raises(TraceValidationError, match="unknown record kinds"):
            validate_trace(t)

    def test_zero_instruction_block(self):
        t = raw_trace([(IBLOCK, CODE, 0, 5)])
        with pytest.raises(TraceValidationError, match="zero instructions"):
            validate_trace(t)

    def test_zero_cycle_block(self):
        t = raw_trace([(IBLOCK, CODE, 2, 0)])
        with pytest.raises(TraceValidationError, match="zero cycles"):
            validate_trace(t)

    def test_cycles_on_data_record(self):
        t = raw_trace([(READ, SHARED, 1, 3)])
        with pytest.raises(TraceValidationError, match="carries cycles"):
            validate_trace(t)

    def test_zero_reps(self):
        t = raw_trace([(READ, SHARED, 0, 0)])
        with pytest.raises(TraceValidationError, match="zero repetitions"):
            validate_trace(t)

    def test_block_outside_code(self):
        t = raw_trace([(IBLOCK, SHARED, 2, 4)])
        with pytest.raises(TraceValidationError, match="outside code region"):
            validate_trace(t)

    def test_data_ref_into_code(self):
        t = raw_trace([(READ, CODE, 1, 0)])
        with pytest.raises(TraceValidationError, match="into code region"):
            validate_trace(t)


class TestLockPairing:
    def test_lock_at_non_lock_address(self):
        t = raw_trace([(LOCK, SHARED, 1, 0), (UNLOCK, SHARED, 1, 0)])
        with pytest.raises(TraceValidationError, match="non-lock address"):
            validate_trace(t)

    def test_reacquire(self):
        t = raw_trace([(LOCK, LOCKA, 1, 0), (LOCK, LOCKA, 1, 0)])
        with pytest.raises(TraceValidationError, match="re-acquired"):
            validate_trace(t)

    def test_release_unheld(self):
        t = raw_trace([(UNLOCK, LOCKA, 1, 0)])
        with pytest.raises(TraceValidationError, match="released while not held"):
            validate_trace(t)

    def test_dangling_hold(self):
        t = raw_trace([(LOCK, LOCKA, 1, 0)])
        with pytest.raises(TraceValidationError, match="ends holding"):
            validate_trace(t)

    def test_two_addresses_for_one_lock(self):
        t = raw_trace(
            [
                (LOCK, LOCKA, 1, 0),
                (UNLOCK, LOCKA, 1, 0),
                (LOCK, LOCKA + 16, 1, 0),
                (UNLOCK, LOCKA + 16, 1, 0),
            ]
        )
        with pytest.raises(TraceValidationError, match="two addresses"):
            validate_trace(t)


class TestCrossProcessor:
    def _ts(self, traces):
        return TraceSet(traces, AddressLayout(len(traces)), program="x")

    def test_noncontiguous_procs(self):
        t0 = raw_trace([(READ, SHARED, 1, 0)], proc=0)
        t2 = raw_trace([(READ, SHARED, 1, 0)], proc=2)
        with pytest.raises(TraceValidationError, match="not contiguous"):
            validate_traceset(self._ts([t0, t2]))

    def test_lock_address_mismatch_across_procs(self):
        t0 = raw_trace([(LOCK, LOCKA, 1, 0), (UNLOCK, LOCKA, 1, 0)], proc=0)
        t1 = raw_trace([(LOCK, LOCKA + 16, 1, 0), (UNLOCK, LOCKA + 16, 1, 0)], proc=1)
        with pytest.raises(TraceValidationError, match="lock 1 has address"):
            validate_traceset(self._ts([t0, t1]))

    def test_foreign_private_reference(self):
        t0 = raw_trace([(READ, PRIV1, 1, 0)], proc=0)  # proc 0 touching proc 1's region
        t1 = raw_trace([(READ, PRIV1, 1, 0)], proc=1)
        with pytest.raises(TraceValidationError, match="private region"):
            validate_traceset(self._ts([t0, t1]))

    def test_mismatched_barrier_counts(self):
        t0 = raw_trace([(BARRIER, 0, 1, 0)], proc=0)
        t1 = raw_trace([(READ, SHARED, 1, 0)], proc=1)
        with pytest.raises(TraceValidationError, match="barrier"):
            validate_traceset(self._ts([t0, t1]))

    def test_matching_barriers_pass(self):
        t0 = raw_trace([(BARRIER, 0, 1, 0)], proc=0)
        t1 = raw_trace([(BARRIER, 0, 1, 0)], proc=1)
        validate_traceset(self._ts([t0, t1]))

    def test_all_generated_workloads_validate(self):
        from repro.workloads import BENCHMARK_ORDER, generate_trace

        for name in BENCHMARK_ORDER:
            validate_traceset(generate_trace(name, scale=0.05))
