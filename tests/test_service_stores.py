"""The peer-replicated warm-store tier: worker ``has``/``fetch`` ops,
:class:`PeerStore` read-through + self-healing, and the scheduler's
``remote`` outcome path (PR 10 tentpole)."""

import asyncio

import pytest

from repro.runner import JobSpec, ResultCache
from repro.runner.executor import _execute
from repro.runner.serialize import (
    RESULT_CODEC,
    result_from_bytes,
    result_from_dict,
    result_to_bytes,
)
from repro.service import (
    InProcessTransport,
    PeerStore,
    Scheduler,
    ServiceMetrics,
    WorkerAgent,
)
from repro.service.transport import BINARY_HINT, Blob
from repro.trace.cache import TraceCache, trace_key

pytestmark = pytest.mark.service

GOOD = JobSpec(program="fullconn", scale=0.05)
OTHER = JobSpec(program="grav", scale=0.05)


def _simulate(spec: JobSpec):
    payload = _execute(spec, None, None)
    assert payload["ok"], payload
    return result_from_dict(payload["result"])


@pytest.fixture(scope="module")
def good_result():
    return _simulate(GOOD)


@pytest.fixture(scope="module")
def other_result():
    return _simulate(OTHER)


class TestResultCodec:
    def test_binary_codec_round_trips_exactly(self, good_result):
        blob = result_to_bytes(good_result)
        assert isinstance(blob, bytes)
        assert result_from_bytes(blob) == good_result

    def test_codec_is_compact(self, good_result):
        import json

        from repro.runner.serialize import result_to_dict

        as_json = len(json.dumps(result_to_dict(good_result)).encode())
        as_binary = len(result_to_bytes(good_result))
        assert as_binary < as_json


class TestWorkerStoreOps:
    def test_has_batches_over_the_result_store(self, tmp_path, good_result):
        cache = ResultCache(tmp_path / "store")
        cache.put(GOOD, good_result)
        agent = WorkerAgent(cache=cache, trace_cache=False, name="store0")
        key = GOOD.cache_key()
        response = asyncio.run(
            agent.handle({"op": "has", "kind": "result", "keys": [key, "missing"]})
        )
        assert response == {"ok": True, "worker": "store0", "present": [key]}

    def test_fetch_answers_json_peers_with_dicts(self, tmp_path, good_result):
        cache = ResultCache(tmp_path / "store")
        cache.put(GOOD, good_result)
        agent = WorkerAgent(cache=cache, trace_cache=False)
        response = asyncio.run(
            agent.handle({"op": "fetch", "kind": "result", "key": GOOD.cache_key()})
        )
        assert response["ok"]
        assert result_from_dict(response["result"]) == good_result

    def test_fetch_answers_binary_peers_with_blobs(self, tmp_path, good_result):
        cache = ResultCache(tmp_path / "store")
        cache.put(GOOD, good_result)
        agent = WorkerAgent(cache=cache, trace_cache=False)
        response = asyncio.run(
            agent.handle(
                {
                    "op": "fetch",
                    "kind": "result",
                    "key": GOOD.cache_key(),
                    BINARY_HINT: True,
                }
            )
        )
        assert response["ok"]
        blob = response["payload"]
        assert isinstance(blob, Blob) and blob.codec == RESULT_CODEC
        assert result_from_bytes(blob.data) == good_result

    def test_fetch_miss_is_an_explicit_miss(self, tmp_path):
        agent = WorkerAgent(cache=ResultCache(tmp_path / "s"), trace_cache=False)
        response = asyncio.run(
            agent.handle({"op": "fetch", "kind": "result", "key": "nope"})
        )
        assert response == {
            "ok": False,
            "kind": "miss",
            "message": "no result for nope",
        }


class TestPeerStore:
    def test_read_through_heals_the_local_cache(self, tmp_path, good_result):
        peer_cache = ResultCache(tmp_path / "peer")
        peer_cache.put(GOOD, good_result)
        peer = WorkerAgent(cache=peer_cache, trace_cache=False)
        local = ResultCache(tmp_path / "local")
        metrics = ServiceMetrics()
        store = PeerStore(
            [InProcessTransport(peer.handle)], cache=local, metrics=metrics
        )
        key = GOOD.cache_key()

        async def scenario():
            present = await store.has([key, OTHER.cache_key()])
            fetched = await store.fetch_result(key, spec=GOOD)
            return present, fetched

        present, fetched = asyncio.run(scenario())
        assert present == {key}
        assert fetched == good_result
        # healed: the next lookup is a plain local hit
        assert local.get_by_key(key) == good_result
        assert metrics.remote_hits == 1

    def test_dead_peer_degrades_to_a_miss(self, tmp_path):
        async def dead(request):
            raise ConnectionError("peer vanished")

        metrics = ServiceMetrics()
        store = PeerStore([InProcessTransport(dead)], metrics=metrics)

        async def scenario():
            present = await store.has(["k1"])
            fetched = await store.fetch_result("k1")
            return present, fetched

        present, fetched = asyncio.run(scenario())
        assert present == set() and fetched is None
        assert metrics.remote_misses == 1

    def test_second_peer_serves_what_the_first_lacks(self, tmp_path, good_result, other_result):
        cache_a = ResultCache(tmp_path / "a")
        cache_a.put(GOOD, good_result)
        cache_b = ResultCache(tmp_path / "b")
        cache_b.put(OTHER, other_result)
        agents = [
            WorkerAgent(cache=cache_a, trace_cache=False),
            WorkerAgent(cache=cache_b, trace_cache=False),
        ]
        store = PeerStore([InProcessTransport(a.handle) for a in agents])

        async def scenario():
            return (
                await store.has([GOOD.cache_key(), OTHER.cache_key()]),
                await store.fetch_result(OTHER.cache_key()),
            )

        present, fetched = asyncio.run(scenario())
        assert present == {GOOD.cache_key(), OTHER.cache_key()}
        assert fetched == other_result

    def test_trace_replication(self, tmp_path):
        # simulate on the peer with a real trace cache, then replicate
        # the traceset by key into an empty local trace cache
        from repro.runner.executor import _TRACE_MEMO

        _TRACE_MEMO.clear()  # earlier cacheless runs must not mask the put
        peer_traces = TraceCache(tmp_path / "peer_traces")
        payload = _execute(GOOD, None, str(peer_traces.root))
        assert payload["ok"]
        peer = WorkerAgent(cache=None, trace_cache=peer_traces)
        key = trace_key(GOOD.program, GOOD.scale, GOOD.seed, GOOD.n_procs)
        assert peer_traces.has_key(key)

        local_traces = TraceCache(tmp_path / "local_traces")
        store = PeerStore(
            [InProcessTransport(peer.handle)], trace_cache=local_traces
        )
        assert asyncio.run(store.fetch_trace(key)) is True
        assert local_traces.has_key(key)
        # the replicated object is byte-identical to the origin's
        assert local_traces.get_bytes(key) == peer_traces.get_bytes(key)


class TestWorkerPeerPath:
    def test_run_consults_peers_before_simulating(self, tmp_path, good_result):
        origin_cache = ResultCache(tmp_path / "origin")
        origin_cache.put(GOOD, good_result)
        origin = WorkerAgent(cache=origin_cache, trace_cache=False)
        worker = WorkerAgent(
            cache=ResultCache(tmp_path / "empty"),
            trace_cache=False,
            peers=[InProcessTransport(origin.handle)],
        )
        payload = asyncio.run(
            worker.handle({"op": "run", "spec": GOOD.to_dict()})
        )
        assert payload["ok"] and payload["cached"] and payload["remote"]
        assert result_from_dict(payload["result"]) == good_result
        # healed into the worker's own store
        assert worker.cache.get(GOOD) == good_result

    def test_run_shard_prewarms_from_peers(self, tmp_path, good_result):
        origin_cache = ResultCache(tmp_path / "origin")
        origin_cache.put(GOOD, good_result)
        origin = WorkerAgent(cache=origin_cache, trace_cache=False)
        worker = WorkerAgent(
            cache=ResultCache(tmp_path / "empty"),
            trace_cache=False,
            peers=[InProcessTransport(origin.handle)],
        )
        response = asyncio.run(
            worker.handle(
                {"op": "run_shard", "specs": [GOOD.to_dict(), OTHER.to_dict()]}
            )
        )
        worker.close()
        assert response["ok"]
        assert len(response["payloads"]) == 2
        assert all(p["ok"] for p in response["payloads"])
        stats = response["stats"]
        # GOOD was healed from the peer (a cache hit inside run_jobs,
        # never re-simulated); OTHER was actually executed
        assert stats["remote"] == 1
        assert stats["cached"] == 1
        assert stats["executed"] == 1


class TestSchedulerStoreTier:
    def test_submit_serves_remote_and_heals(self, tmp_path, good_result):
        origin_cache = ResultCache(tmp_path / "origin")
        origin_cache.put(GOOD, good_result)
        origin = WorkerAgent(cache=origin_cache, trace_cache=False)
        scheduler = Scheduler(
            cache=ResultCache(tmp_path / "front"),
            trace_cache=False,
            peers=[InProcessTransport(origin.handle)],
        )
        out = asyncio.run(scheduler.submit(GOOD))
        assert out.status == "remote"
        assert out.outcome == good_result
        assert scheduler.metrics.remote_hits == 1
        assert scheduler.metrics.executed == 0
        # healed: the second submit is a plain local hit
        out2 = asyncio.run(scheduler.submit(GOOD))
        assert out2.status == "hit"

    def test_submit_grid_peer_phase_with_remote_workers(self, tmp_path, good_result):
        origin_cache = ResultCache(tmp_path / "origin")
        origin_cache.put(GOOD, good_result)
        origin = WorkerAgent(cache=origin_cache, trace_cache=False)
        worker = WorkerAgent(cache=None, trace_cache=False)
        scheduler = Scheduler(
            cache=ResultCache(tmp_path / "front"),
            trace_cache=False,
            transports=[InProcessTransport(worker.handle)],
            peers=[InProcessTransport(origin.handle)],
        )
        outs = asyncio.run(scheduler.submit_grid([GOOD, OTHER]))
        worker.close()
        statuses = {o.spec.program: o.status for o in outs}
        assert statuses == {"fullconn": "remote", "grav": "ok"}
        assert all(o.ok for o in outs)
        assert scheduler.metrics.remote_hits == 1
        assert scheduler.metrics.executed == 1

    def test_grid_remote_outcome_records_as_cached_in_manifests(
        self, tmp_path, good_result
    ):
        origin_cache = ResultCache(tmp_path / "origin")
        origin_cache.put(GOOD, good_result)
        origin = WorkerAgent(cache=origin_cache, trace_cache=False)
        scheduler = Scheduler(
            cache=ResultCache(tmp_path / "front"),
            trace_cache=False,
            peers=[InProcessTransport(origin.handle)],
        )
        out = asyncio.run(scheduler.submit(GOOD))
        assert out.manifest_record()["status"] == "cached"
