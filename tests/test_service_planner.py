"""Shard planning: cost-weighted LPT balancing and grid expansion."""

import pytest

from repro.runner import JobSpec
from repro.service import estimate_cost, grid_specs, plan_shards

pytestmark = pytest.mark.service


class TestEstimateCost:
    def test_known_programs_keep_measured_ordering(self):
        # the weights come from the hot-path benchmark's suite seconds:
        # qsort is the most expensive program, synthetic the cheapest
        qsort = estimate_cost(JobSpec(program="qsort", scale=0.1))
        synthetic = estimate_cost(JobSpec(program="synthetic", scale=0.1))
        assert qsort > synthetic > 0

    def test_weak_ordering_costs_more_than_sc(self):
        sc = JobSpec(program="grav", scale=0.1, consistency="sc")
        wo = JobSpec(program="grav", scale=0.1, consistency="wo")
        assert estimate_cost(wo) > estimate_cost(sc)

    def test_cost_scales_with_scale(self):
        small = JobSpec(program="pdsa", scale=0.1)
        large = JobSpec(program="pdsa", scale=0.4)
        assert estimate_cost(large) == pytest.approx(4 * estimate_cost(small))

    def test_unknown_program_gets_default_weight(self):
        assert estimate_cost(JobSpec(program="mystery", scale=1.0)) > 0


class TestPlanShards:
    def test_every_index_assigned_exactly_once(self):
        specs = grid_specs(
            ["qsort", "grav", "synthetic"], ["queuing", "ttas"], ["sc", "wo"]
        )
        shards = plan_shards(specs, 3)
        seen = sorted(i for s in shards for i in s.indices)
        assert seen == list(range(len(specs)))
        for shard in shards:
            assert [specs[i] for i in shard.indices] == list(shard.specs)

    def test_balances_heavy_and_light_cells(self):
        # 2 expensive qsort cells + 6 cheap synthetic cells into 2
        # shards: LPT must not put both qsort cells on one shard
        specs = [JobSpec(program="qsort", scale=0.2)] * 2 + [
            JobSpec(program="synthetic", scale=0.2, seed=i) for i in range(6)
        ]
        shards = plan_shards(specs, 2)
        assert len(shards) == 2
        qsort_per_shard = [
            sum(1 for s in shard.specs if s.program == "qsort") for shard in shards
        ]
        assert sorted(qsort_per_shard) == [1, 1]
        costs = [shard.cost for shard in shards]
        assert max(costs) < 0.75 * sum(costs)

    def test_within_shard_order_is_submission_order(self):
        specs = [JobSpec(program="synthetic", scale=0.1, seed=i) for i in range(7)]
        for shard in plan_shards(specs, 3):
            assert list(shard.indices) == sorted(shard.indices)

    def test_empty_shards_dropped(self):
        specs = [JobSpec(program="grav", scale=0.1)]
        shards = plan_shards(specs, 4)
        assert len(shards) == 1
        assert shards[0].indices == (0,)

    def test_no_specs_no_shards(self):
        assert plan_shards([], 2) == []


class TestGridSpecs:
    def test_row_major_expansion(self):
        specs = grid_specs(["grav", "qsort"], ["queuing", "ttas"], ["sc"])
        assert [(s.program, s.lock_scheme, s.consistency) for s in specs] == [
            ("grav", "queuing", "sc"),
            ("grav", "ttas", "sc"),
            ("qsort", "queuing", "sc"),
            ("qsort", "ttas", "sc"),
        ]

    def test_common_parameters_applied(self):
        specs = grid_specs(
            ["grav"], ["queuing"], ["sc"], scale=0.25, seed=7, n_procs=4
        )
        assert specs[0].scale == 0.25
        assert specs[0].seed == 7
        assert specs[0].n_procs == 4

    def test_every_registered_scheme_accepted(self):
        from repro.sync import LOCK_SCHEMES

        specs = grid_specs(["grav"], sorted(LOCK_SCHEMES), ["sc"])
        assert len(specs) == len(LOCK_SCHEMES)

    def test_unknown_scheme_rejected_at_expansion(self):
        with pytest.raises(ValueError, match="unknown lock scheme"):
            grid_specs(["grav"], ["queuing", "mcs-typo"], ["sc"])
