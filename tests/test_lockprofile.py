"""Tests for the per-lock contention profile extension."""

import pytest

from repro.core.lockprofile import lock_profile, render_lock_profile
from repro.machine.system import simulate
from repro.workloads import generate_trace


@pytest.fixture(scope="module")
def grav_run():
    ts = generate_trace("grav", scale=0.3)
    return ts, simulate(ts)


class TestLockProfile:
    def test_rows_sorted_hottest_first(self, grav_run):
        ts, result = grav_run
        rows = lock_profile(result, ts)
        transfers = [r.transfers for r in rows]
        assert transfers == sorted(transfers, reverse=True)

    def test_scheduler_lock_dominates_grav(self, grav_run):
        """§3.1: the Presto scheduler lock is Grav's hot spot."""
        ts, result = grav_run
        rows = lock_profile(result, ts)
        assert rows[0].name == "presto.scheduler"
        total = sum(r.transfers for r in rows)
        assert rows[0].transfers > 0.6 * total

    def test_names_resolved_from_layout(self, grav_run):
        ts, result = grav_run
        names = {r.name for r in lock_profile(result, ts)}
        assert {"presto.scheduler", "presto.runqueue", "grav.tree"} <= names

    def test_without_traceset_uses_generic_names(self, grav_run):
        _, result = grav_run
        rows = lock_profile(result)
        assert all(r.name.startswith("lock") for r in rows)

    def test_acquisition_totals_match_run(self, grav_run):
        ts, result = grav_run
        rows = lock_profile(result, ts)
        assert sum(r.acquisitions for r in rows) == result.lock_stats.acquisitions
        assert sum(r.transfers for r in rows) == result.lock_stats.transfers

    def test_derived_row_stats(self, grav_run):
        ts, result = grav_run
        for r in lock_profile(result, ts):
            assert 0 <= r.contended_fraction <= 1
            assert r.avg_waiters_at_transfer >= 0
            if r.acquisitions:
                assert r.avg_hold >= 0

    def test_render_includes_names_and_truncation(self, grav_run):
        ts, result = grav_run
        text = render_lock_profile(result, ts, top=2)
        assert "presto.scheduler" in text
        assert "more locks" in text  # there are >2 locks in grav

    def test_fullconn_spreads_transfers(self):
        """FullConn's per-node locks: no single lock dominates like
        Grav's scheduler (the paper's low-contention contrast)."""
        ts = generate_trace("fullconn", scale=1.0)
        result = simulate(ts)
        rows = lock_profile(result, ts)
        node_rows = [r for r in rows if r.name.startswith("fullconn.node")]
        assert len(node_rows) >= 10  # every node lock used
        total = sum(r.transfers for r in rows)
        if total:
            assert rows[0].transfers <= 0.8 * total

    def test_layout_names_survive_trace_roundtrip(self, tmp_path):
        from repro.trace import load_traceset, save_traceset

        ts = generate_trace("pdsa", scale=0.05)
        path = tmp_path / "t.npz"
        save_traceset(ts, path)
        ts2 = load_traceset(path)
        assert ts2.layout.lock_names == ts.layout.lock_names
        assert "pdsa.anneal" in ts2.layout.lock_names.values()
