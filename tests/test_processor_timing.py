"""Timing tests: hand-built traces through the full System, checking the
paper's §2.2 cycle accounting (6-cycle uncontended miss, etc.)."""

import pytest

from repro.consistency import SEQUENTIAL, WEAK
from repro.machine.system import System
from repro.sync import QueuingLockManager
from tests.conftest import make_traceset, tiny_machine


def run(ts, model=SEQUENTIAL, config=None, **kw):
    config = config or tiny_machine(n_procs=ts.n_procs)
    system = System(ts, config, QueuingLockManager(), model, **kw)
    return system.run(), system


class TestIdealExecution:
    def test_pure_compute_takes_work_cycles_plus_cold_ifetch(self):
        def fn(b, layout):
            code = layout.alloc_code(64)
            b.block(4, 50, code)  # one code line: one cold ifetch miss
            b.block(4, 50, code)

        result, _ = run(make_traceset([fn]))
        m = result.proc_metrics[0]
        assert m.work_cycles == 100
        # one cold ifetch miss at 6 cycles
        assert m.stall_miss == 6
        assert result.run_time == 106
        assert m.utilization == pytest.approx(100 / 106)

    def test_completion_equals_work_plus_stalls(self):
        def fn(b, layout):
            code = layout.alloc_code(256)
            sh = layout.alloc_shared(256)
            b.block(8, 20, code)
            b.read(sh, reps=8)
            b.write(sh + 64, reps=4)
            b.block(8, 20, code + 128)

        result, _ = run(make_traceset([fn, fn]))
        for m in result.proc_metrics:
            assert m.completion_time == m.work_cycles + m.total_stall


class TestMissTiming:
    def test_isolated_read_miss_costs_six_cycles(self):
        def fn(b, layout):
            code = layout.alloc_code(16)
            sh = layout.alloc_shared(16)
            b.block(1, 2, code)
            b.read(sh)

        result, _ = run(make_traceset([fn]))
        m = result.proc_metrics[0]
        # two cold misses (ifetch + data), 6 cycles each
        assert m.stall_miss == 12
        assert result.read_misses == 1
        assert result.ifetch_misses == 1

    def test_second_read_to_same_line_hits(self):
        def fn(b, layout):
            sh = layout.alloc_shared(16)
            b.read(sh)
            b.read(sh + 4)

        result, _ = run(make_traceset([fn]))
        assert result.read_misses == 1
        assert result.read_hits == 1

    def test_write_miss_costs_six_cycles_under_sc(self):
        def fn(b, layout):
            sh = layout.alloc_shared(16)
            b.write(sh)

        result, _ = run(make_traceset([fn]))
        m = result.proc_metrics[0]
        assert m.stall_miss == 6
        assert result.write_misses == 1

    def test_write_after_write_allocate_hits(self):
        def fn(b, layout):
            sh = layout.alloc_shared(16)
            b.write(sh)
            b.write(sh + 8)

        result, _ = run(make_traceset([fn]))
        assert result.write_misses == 1
        assert result.write_hits == 1

    def test_rep_record_counts_all_refs_one_miss_per_line(self):
        def fn(b, layout):
            sh = layout.alloc_shared(64)
            b.read(sh, reps=16)  # 4 lines

        result, _ = run(make_traceset([fn]))
        assert result.read_misses == 4
        assert result.read_hits == 12
        assert result.proc_metrics[0].stall_miss == 4 * 6

    def test_ifetch_block_spanning_lines(self):
        def fn(b, layout):
            code = layout.alloc_code(256)
            b.block(12, 30, code)  # 12 x 4B = 48B = 3 lines

        result, _ = run(make_traceset([fn]))
        assert result.ifetch_misses == 3
        assert result.ifetch_hits == 9


class TestWeakOrderingSemantics:
    def test_write_miss_does_not_stall_under_wo(self):
        def fn(b, layout):
            code = layout.alloc_code(16)
            sh = layout.alloc_shared(16)
            b.block(1, 10, code)
            b.write(sh)
            b.block(1, 10, code)  # hits: already fetched

        sc, _ = run(make_traceset([fn]))
        wo, _ = run(make_traceset([fn]), model=WEAK)
        sc_m, wo_m = sc.proc_metrics[0], wo.proc_metrics[0]
        assert sc_m.stall_miss > wo_m.stall_miss
        assert wo.write_misses == 1  # the miss still happened, unstalled

    def test_read_of_pending_write_line_waits_for_data(self):
        def fn(b, layout):
            sh = layout.alloc_shared(16)
            b.write(sh)
            b.read(sh + 4)  # same line: own store's data dependency

        result, _ = run(make_traceset([fn]), model=WEAK)
        m = result.proc_metrics[0]
        assert m.stall_miss > 0  # waited for the RFO
        assert result.read_hits == 1  # once filled, the read hits

    def test_wo_drains_before_sync(self):
        def fn(b, layout):
            sh = layout.alloc_shared(16)
            la = layout.alloc_lock()
            b.write(sh)  # buffered
            b.lock(0, la)  # must drain first
            b.unlock(0, la)

        result, _ = run(make_traceset([fn]), model=WEAK)
        m = result.proc_metrics[0]
        assert m.drains == 2
        assert m.drains_nonempty >= 1
        assert m.stall_drain > 0

    def test_sc_never_drains(self):
        def fn(b, layout):
            sh = layout.alloc_shared(16)
            la = layout.alloc_lock()
            b.write(sh)
            b.lock(0, la)
            b.unlock(0, la)

        result, _ = run(make_traceset([fn]))
        assert result.proc_metrics[0].drains == 0


class TestWriteback:
    def test_dirty_eviction_generates_writeback(self):
        def fn(b, layout):
            # 3 lines in the same set of a tiny cache: evict dirty
            base = layout.alloc_shared(4096)
            b.write(base)
            b.write(base + 128)
            b.write(base + 256)

        cfg = tiny_machine(n_procs=1)
        from dataclasses import replace
        from repro.machine.config import CacheConfig

        cfg = replace(cfg, cache=CacheConfig(size_bytes=128, line_bytes=16, assoc=2))
        result, system = run(make_traceset([fn]), config=cfg)
        assert result.writebacks == 1
        assert system.memory.writes_serviced == 1

    def test_reclaim_from_writeback_buffer(self):
        """A reference that hits its own still-buffered write-back pulls
        the line back in one cycle with no bus traffic."""
        from repro.machine.buffers import WRITEBACK, BusOp
        from repro.machine.cache import MODIFIED

        def fn(b, layout):
            b.read(layout.alloc_shared(16))

        ts = make_traceset([fn])
        cfg = tiny_machine(n_procs=1)
        system = System(ts, cfg, QueuingLockManager(), SEQUENTIAL)
        proc = system.procs[0]
        line = 123
        wb = BusOp(WRITEBACK, line, 0)
        system.buffers[0].push(wb)
        proc.outstanding_wb += 1
        t0 = proc.time
        assert proc._reclaim_from_buffer(line) is True
        assert proc.cache.probe(line) == MODIFIED
        assert proc.time == t0 + 1
        assert wb.cancelled
        assert proc.outstanding_wb == 0
        # a line not in the buffer is not reclaimable
        assert proc._reclaim_from_buffer(999) is False


class TestCompletionInvariants:
    def test_all_procs_finish(self):
        def fn(b, layout):
            sh = layout.alloc_shared(1024)
            for i in range(20):
                b.read(sh + (i * 16) % 1024)

        result, _ = run(make_traceset([fn, fn, fn]))
        assert all(m.completion_time > 0 for m in result.proc_metrics)

    def test_refs_processed_matches_trace(self):
        def fn(b, layout):
            code = layout.alloc_code(64)
            sh = layout.alloc_shared(64)
            b.block(6, 12, code)
            b.read(sh, reps=5)
            b.write(sh, reps=2)

        result, _ = run(make_traceset([fn]))
        assert result.proc_metrics[0].refs_processed == 13

    def test_deadlock_detection_reports_stuck_procs(self):
        """A trace whose lock is never released by anyone else cannot
        hang silently."""

        def fn0(b, layout):
            la = layout.alloc_lock()
            b.lock(0, la)
            # never unlocks -- builder forbids this, so use check=False
            b._lock_stack.clear()

        from repro.trace.builder import TraceBuilder
        from repro.trace.layout import AddressLayout
        from repro.trace.records import TraceSet

        layout = AddressLayout(2)
        la = layout.alloc_lock()
        b0 = TraceBuilder(0, layout, check=False)
        b0.lock(0, la)
        b0._lock_stack.clear()  # bypass the end-of-trace check
        b1 = TraceBuilder(1, layout, check=False)
        b1.lock(0, la)
        b1._lock_stack.clear()
        ts = TraceSet([b0.finish(), b1.finish()], layout, program="dead")
        with pytest.raises(RuntimeError, match="deadlock"):
            run(ts)
