"""Tests for the core ideal analysis (Tables 1/2 aggregation)."""

import pytest

from repro.core.ideal import ideal_stats
from repro.workloads import generate_trace
from tests.conftest import make_traceset


class TestAggregation:
    def test_averages_over_processors(self):
        def short(b, layout):
            code = layout.alloc_code(64)
            b.block(4, 100, code)

        def long(b, layout):
            code = layout.alloc_code(64)
            b.block(4, 300, code)
            b.read(layout.alloc_shared(16))

        ideal = ideal_stats(make_traceset([short, long]))
        assert ideal.n_procs == 2
        assert ideal.work_cycles == pytest.approx(200)
        assert ideal.all_refs == pytest.approx((4 + 5) / 2)
        assert ideal.data_refs == pytest.approx(0.5)

    def test_hold_time_weighted_by_pairs(self):
        state = {}

        def one_hold(b, layout):
            if "l" not in state:
                state["l"] = layout.alloc_lock()
                state["c"] = layout.alloc_code(64)
            b.lock(0, state["l"])
            b.block(2, 100, state["c"])
            b.unlock(0, state["l"])

        def three_holds(b, layout):
            for _ in range(3):
                b.lock(0, state["l"])
                b.block(2, 200, state["c"])
                b.unlock(0, state["l"])

        ideal = ideal_stats(make_traceset([one_hold, three_holds]))
        # weighted: (1*100 + 3*200) / 4, not (100+200)/2
        assert ideal.avg_held == pytest.approx(175.0)
        assert ideal.lock_pairs == pytest.approx(2.0)

    def test_pct_time_held(self):
        state = {}

        def fn(b, layout):
            if "l" not in state:
                state["l"] = layout.alloc_lock()
                state["c"] = layout.alloc_code(64)
            b.lock(0, state["l"])
            b.block(2, 30, state["c"])
            b.unlock(0, state["l"])
            b.block(2, 70, state["c"])

        ideal = ideal_stats(make_traceset([fn, fn]))
        assert ideal.pct_time_held == pytest.approx(30.0)

    def test_derived_fractions(self):
        def fn(b, layout):
            code = layout.alloc_code(64)
            b.block(6, 20, code)
            b.read(layout.alloc_shared(16))
            b.read(layout.alloc_private(0, 16))

        ideal = ideal_stats(make_traceset([fn]))
        assert ideal.data_fraction == pytest.approx(2 / 8)
        assert ideal.shared_fraction == pytest.approx(0.5)
        assert ideal.cycles_per_ref == pytest.approx(20 / 8)


class TestPaperShape:
    """The ideal-statistics *orderings* the paper's analysis rests on."""

    @pytest.fixture(scope="class")
    def ideals(self):
        return {
            name: ideal_stats(generate_trace(name, scale=0.25))
            for name in ("grav", "pdsa", "fullconn", "pverify", "qsort", "topopt")
        }

    def test_lock_pair_ordering(self, ideals):
        """Grav >> Pdsa >> FullConn ~ Pverify ~ Qsort > Topopt = 0."""
        assert ideals["grav"].lock_pairs > 1.5 * ideals["pdsa"].lock_pairs
        assert ideals["pdsa"].lock_pairs > 3 * ideals["fullconn"].lock_pairs
        assert ideals["topopt"].lock_pairs == 0

    def test_pverify_holds_longest_by_an_order_of_magnitude(self, ideals):
        others = [
            ideals[n].avg_held for n in ("grav", "pdsa", "fullconn", "qsort")
        ]
        assert ideals["pverify"].avg_held > 5 * max(others)

    def test_grav_and_pverify_high_pct_held(self, ideals):
        assert ideals["grav"].pct_time_held > 15
        assert ideals["pverify"].pct_time_held > 25
        assert ideals["qsort"].pct_time_held < 3

    def test_nested_locks_only_in_presto_programs(self, ideals):
        for name in ("grav", "pdsa", "fullconn"):
            assert ideals[name].nested_locks > 0
        for name in ("pverify", "qsort", "topopt"):
            assert ideals[name].nested_locks == 0

    def test_qsort_short_holds(self, ideals):
        assert ideals["qsort"].avg_held < 100
