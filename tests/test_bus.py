"""Unit tests for bus arbitration, against a scripted service.

Every arbitration law is checked against BOTH arbiters: the O(1)
bitmask fast arbiter (``fast_path=True``, the default) and the
reference sort-and-scan arbiter it must be observationally identical
to (``fast_path=False``, the committed-baseline implementation).
"""

from collections import deque

import pytest

from repro.machine.buffers import BusOp, READ_MISS
from repro.machine.bus import Bus
from repro.machine.engine import Engine


@pytest.fixture(params=[True, False], ids=["fast", "reference"])
def fast_path(request):
    return request.param


class ListPort:
    def __init__(self):
        self.q = deque()
        self.entries = self.q  # arbiter skips empty ports via this attr
        self.ready_cb = None  # assigned by Bus.add_port

    def push(self, op):
        self.q.append(op)
        if self.ready_cb is not None:
            self.ready_cb()

    def peek(self):
        return self.q[0] if self.q else None

    def pop(self):
        return self.q.popleft()


class ScriptService:
    """Grants everything; each op holds the bus for `hold` cycles."""

    def __init__(self, hold=3, deny=None):
        self.hold = hold
        self.deny = deny or (lambda op, t: False)
        self.executed = []

    def can_issue(self, op, time):
        return not self.deny(op, time)

    def execute(self, op, time):
        self.executed.append((op, time))
        return (self.hold, None)


def make(n_ports=3, fast_path=True, **kw):
    engine = Engine()
    service = ScriptService(**kw)
    bus = Bus(engine, service, fast_path=fast_path)
    ports = [ListPort() for _ in range(n_ports)]
    for p in ports:
        bus.add_port(p)
    return engine, service, bus, ports


def op(line=0, proc=0):
    return BusOp(READ_MISS, line, proc)


class TestArbitration:
    def test_single_op_granted_immediately(self, fast_path):
        engine, service, bus, ports = make(fast_path=fast_path)
        o = op()
        ports[0].push(o)
        bus.kick(0)
        assert service.executed == [(o, 0)]
        assert bus.busy

    def test_serialization_respects_hold(self, fast_path):
        engine, service, bus, ports = make(hold=3, fast_path=fast_path)
        a, b = op(1), op(2)
        ports[0].push(a)
        ports[0].push(b)
        bus.kick(0)
        engine.run()
        assert service.executed == [(a, 0), (b, 3)]

    def test_round_robin_across_ports(self, fast_path):
        engine, service, bus, ports = make(n_ports=3, hold=2, fast_path=fast_path)
        a, b, c = op(1, 0), op(2, 1), op(3, 2)
        ports[0].push(a)
        ports[1].push(b)
        ports[2].push(c)
        bus.kick(0)
        engine.run()
        # port 0 first (rr starts at 0), then 1, then 2
        assert [o for o, _ in service.executed] == [a, b, c]

    def test_round_robin_pointer_advances_past_grantee(self, fast_path):
        engine, service, bus, ports = make(n_ports=2, hold=1, fast_path=fast_path)
        a1, a2 = op(1, 0), op(2, 0)
        b1 = op(3, 1)
        ports[0].push(a1)
        ports[0].push(a2)
        ports[1].push(b1)
        bus.kick(0)
        engine.run()
        # fairness: a1, then port 1's b1, then a2
        assert [o for o, _ in service.executed] == [a1, b1, a2]

    def test_non_issuable_port_skipped(self, fast_path):
        engine, service, bus, ports = make(
            n_ports=2, hold=1, deny=lambda o, t: o.line == 1, fast_path=fast_path
        )
        blocked = op(1, 0)
        runnable = op(2, 1)
        ports[0].push(blocked)
        ports[1].push(runnable)
        bus.kick(0)
        engine.run()
        assert [o for o, _ in service.executed] == [runnable]
        assert ports[0].peek() is blocked  # still queued

    def test_idle_until_kick(self, fast_path):
        engine, service, bus, ports = make(fast_path=fast_path)
        engine.run()
        ports[0].push(op())
        # no kick: nothing happens
        assert service.executed == []
        bus.kick(engine.now)
        assert len(service.executed) == 1

    def test_kick_while_busy_is_noop(self, fast_path):
        engine, service, bus, ports = make(hold=5, fast_path=fast_path)
        ports[0].push(op(1))
        bus.kick(0)
        ports[0].push(op(2))
        bus.kick(0)  # busy: must not double-grant
        assert len(service.executed) == 1
        engine.run()
        assert len(service.executed) == 2


class TestStats:
    def test_busy_cycles_accumulate(self, fast_path):
        engine, service, bus, ports = make(hold=4, fast_path=fast_path)
        ports[0].push(op(1))
        ports[0].push(op(2))
        bus.kick(0)
        engine.run()
        assert bus.busy_cycles == 8
        assert bus.grants == 2
        assert bus.utilization(16) == pytest.approx(0.5)

    def test_op_counts_by_kind(self, fast_path):
        engine, service, bus, ports = make(fast_path=fast_path)
        ports[0].push(op())
        bus.kick(0)
        engine.run()
        assert bus.op_counts[READ_MISS] == 1

    def test_zero_hold_rejected(self, fast_path):
        engine, _, bus, ports = make(hold=0, fast_path=fast_path)
        ports[0].push(op())
        with pytest.raises(ValueError, match="hold"):
            bus.kick(0)
