"""Tests for the content-addressed trace cache (repro.trace.cache)."""

import json

import numpy as np
import pytest

from repro.trace.cache import (
    TRACE_CACHE_FORMAT,
    TraceCache,
    default_trace_cache_dir,
    resolve_trace_cache,
    trace_key,
)
from repro.trace.encode import FORMAT_VERSION, dumps_traceset
from repro.workloads.registry import generate_trace

PROGRAM = "fullconn"
SCALE = 0.1
SEED = 7


@pytest.fixture
def cache(tmp_path):
    return TraceCache(tmp_path / "traces")


@pytest.fixture
def stored(cache):
    """A traceset generated fresh and stored in the cache."""
    ts = generate_trace(PROGRAM, scale=SCALE, seed=SEED)
    key = cache.put(ts, scale=SCALE, seed=SEED)
    return ts, key


class TestRoundTrip:
    def test_get_returns_byte_identical_traceset(self, cache, stored):
        ts, _key = stored
        hit = cache.get(PROGRAM, scale=SCALE, seed=SEED)
        assert hit is not None
        assert dumps_traceset(hit) == dumps_traceset(ts)

    def test_hit_is_memory_mapped(self, cache, stored):
        hit = cache.get(PROGRAM, scale=SCALE, seed=SEED)
        assert isinstance(hit[0].records.base, np.memmap)

    def test_mmap_mode_none_reads_private_copy(self, tmp_path, stored):
        _, _ = stored
        other = TraceCache(tmp_path / "traces", mmap_mode=None)
        hit = other.get(PROGRAM, scale=SCALE, seed=SEED)
        assert hit is not None
        assert not isinstance(hit[0].records.base, np.memmap)

    def test_layout_and_meta_survive(self, cache, stored):
        ts, _ = stored
        hit = cache.get(PROGRAM, scale=SCALE, seed=SEED)
        assert hit.layout.to_dict() == ts.layout.to_dict()
        assert hit.meta == ts.meta
        assert hit.program == ts.program
        assert hit.n_procs == ts.n_procs

    def test_stats_accounting(self, cache, stored):
        assert cache.stats.puts == 1
        cache.get(PROGRAM, scale=SCALE, seed=SEED)
        cache.get(PROGRAM, scale=SCALE, seed=SEED + 1)  # miss
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.lookups == 2
        assert cache.stats.hit_rate == 0.5
        assert "1 hits, 1 misses" in cache.stats.summary()


class TestKeying:
    def test_key_is_param_sensitive(self):
        base = trace_key(PROGRAM, SCALE, SEED)
        assert trace_key(PROGRAM, SCALE, SEED) == base  # stable
        assert trace_key("qsort", SCALE, SEED) != base
        assert trace_key(PROGRAM, SCALE + 0.1, SEED) != base
        assert trace_key(PROGRAM, SCALE, SEED + 1) != base
        assert trace_key(PROGRAM, SCALE, SEED, n_procs=4) != base

    def test_key_covers_format_versions(self, monkeypatch):
        import repro.trace.cache as mod

        base = trace_key(PROGRAM, SCALE, SEED)
        monkeypatch.setattr(mod, "TRACE_CACHE_FORMAT", TRACE_CACHE_FORMAT + 1)
        assert trace_key(PROGRAM, SCALE, SEED) != base
        monkeypatch.setattr(mod, "TRACE_CACHE_FORMAT", TRACE_CACHE_FORMAT)
        monkeypatch.setattr(mod, "FORMAT_VERSION", FORMAT_VERSION + 1)
        assert trace_key(PROGRAM, SCALE, SEED) != base

    def test_miss_for_other_params(self, cache, stored):
        assert cache.get(PROGRAM, scale=SCALE, seed=SEED + 1) is None
        assert cache.get("qsort", scale=SCALE, seed=SEED) is None
        assert cache.get(PROGRAM, scale=SCALE, seed=SEED, n_procs=4) is None


class TestInvalidation:
    """Bad objects are deleted and counted, never raised."""

    def _assert_healed(self, cache, key):
        assert cache.get(PROGRAM, scale=SCALE, seed=SEED) is None
        assert cache.stats.invalidated == 1
        assert not cache.meta_path(key).exists()
        assert not cache.data_path(key).exists()

    def test_corrupt_sidecar(self, cache, stored):
        _, key = stored
        cache.meta_path(key).write_text("{ not json")
        self._assert_healed(cache, key)

    def test_stale_cache_format(self, cache, stored):
        _, key = stored
        meta = json.loads(cache.meta_path(key).read_text())
        meta["cache_format"] = TRACE_CACHE_FORMAT + 1
        cache.meta_path(key).write_text(json.dumps(meta))
        self._assert_healed(cache, key)

    def test_stale_encode_format(self, cache, stored):
        """Satellite: an object written under a different trace encoding
        version must be rejected with a miss, not reinterpreted."""
        _, key = stored
        meta = json.loads(cache.meta_path(key).read_text())
        meta["encode_format"] = FORMAT_VERSION + 1
        cache.meta_path(key).write_text(json.dumps(meta))
        self._assert_healed(cache, key)

    def test_key_mismatch(self, cache, stored):
        _, key = stored
        meta = json.loads(cache.meta_path(key).read_text())
        meta["key"] = "0" * 64
        cache.meta_path(key).write_text(json.dumps(meta))
        self._assert_healed(cache, key)

    def test_truncated_data(self, cache, stored):
        _, key = stored
        data = cache.data_path(key).read_bytes()
        cache.data_path(key).write_bytes(data[: len(data) // 2])
        self._assert_healed(cache, key)

    def test_missing_data_with_sidecar(self, cache, stored):
        _, key = stored
        cache.data_path(key).unlink()
        self._assert_healed(cache, key)

    def test_malformed_counts(self, cache, stored):
        _, key = stored
        meta = json.loads(cache.meta_path(key).read_text())
        meta["counts"] = meta["counts"][:-1]
        cache.meta_path(key).write_text(json.dumps(meta))
        self._assert_healed(cache, key)


class TestHousekeeping:
    def test_count_size_clear(self, cache, stored):
        assert cache.count() == 1
        assert cache.size_bytes() > 0
        assert cache.clear() == 1
        assert cache.count() == 0
        assert cache.get(PROGRAM, scale=SCALE, seed=SEED) is None

    def test_describe(self, cache, stored):
        text = cache.describe()
        assert "cached tracesets" in text
        assert str(cache.root) in text

    def test_empty_cache(self, tmp_path):
        cache = TraceCache(tmp_path / "nowhere")
        assert cache.count() == 0
        assert cache.size_bytes() == 0
        assert cache.clear() == 0


class TestResolve:
    def test_explicit_values(self, tmp_path):
        handle = TraceCache(tmp_path)
        assert resolve_trace_cache(handle) is handle
        assert resolve_trace_cache(False) is None
        assert resolve_trace_cache(True) is not None
        assert resolve_trace_cache(tmp_path / "x").root == tmp_path / "x"

    def test_env_unset_disables(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRACE_CACHE", raising=False)
        assert resolve_trace_cache(None) is None

    @pytest.mark.parametrize("value", ["", "0", "off", "no", "FALSE"])
    def test_env_falsy_disables(self, monkeypatch, value):
        monkeypatch.setenv("REPRO_TRACE_CACHE", value)
        assert resolve_trace_cache(None) is None

    @pytest.mark.parametrize("value", ["1", "on", "yes", "TRUE"])
    def test_env_truthy_enables_default_dir(self, monkeypatch, tmp_path, value):
        monkeypatch.setenv("REPRO_TRACE_CACHE", value)
        monkeypatch.setenv("REPRO_TRACE_CACHE_DIR", str(tmp_path / "t"))
        cache = resolve_trace_cache(None)
        assert cache is not None
        assert cache.root == tmp_path / "t"

    def test_env_path_is_cache_root(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "env-root"))
        cache = resolve_trace_cache(None)
        assert cache.root == tmp_path / "env-root"

    def test_explicit_false_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", "1")
        assert resolve_trace_cache(False) is None

    def test_default_dir_fallbacks(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_TRACE_CACHE_DIR", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "rc"))
        assert default_trace_cache_dir() == tmp_path / "rc" / "traces"
        monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
        monkeypatch.setenv("XDG_CACHE_HOME", str(tmp_path / "xdg"))
        assert default_trace_cache_dir() == tmp_path / "xdg" / "repro" / "traces"
        monkeypatch.setenv("REPRO_TRACE_CACHE_DIR", str(tmp_path / "direct"))
        assert default_trace_cache_dir() == tmp_path / "direct"


class TestGenerateTraceIntegration:
    def test_generate_populates_and_hits(self, cache):
        ts1 = generate_trace(PROGRAM, scale=SCALE, seed=SEED, trace_cache=cache)
        assert cache.stats.puts == 1 and cache.stats.misses == 1
        ts2 = generate_trace(PROGRAM, scale=SCALE, seed=SEED, trace_cache=cache)
        assert cache.stats.hits == 1
        assert dumps_traceset(ts1) == dumps_traceset(ts2)

    def test_disabled_by_default(self, monkeypatch, cache):
        monkeypatch.delenv("REPRO_TRACE_CACHE", raising=False)
        generate_trace(PROGRAM, scale=SCALE, seed=SEED)
        assert cache.count() == 0


class TestRunnerIntegration:
    def _fresh_memo(self):
        import repro.runner.executor as ex

        ex._TRACE_MEMO.clear()

    def test_run_jobs_populates_then_hits(self, tmp_path):
        from repro.runner import JobSpec, run_jobs

        cache = TraceCache(tmp_path / "traces")
        specs = [
            JobSpec(program=PROGRAM, scale=SCALE, seed=SEED, lock_scheme=s)
            for s in ("queuing", "ttas")
        ]
        self._fresh_memo()
        cold = run_jobs(specs, trace_cache=cache).raise_on_failure()
        assert cache.stats.puts == 1  # generated once, shared in-process

        self._fresh_memo()
        warm_cache = TraceCache(tmp_path / "traces")
        warm = run_jobs(specs, trace_cache=warm_cache).raise_on_failure()
        assert warm_cache.stats.hits == 1
        assert warm_cache.stats.puts == 0

        from repro.runner.serialize import result_to_dict

        for a, b in zip(cold.outcomes, warm.outcomes):
            assert result_to_dict(a) == result_to_dict(b)

    def test_run_jobs_parallel_reads_cache(self, tmp_path):
        from repro.runner import JobSpec, run_jobs
        from repro.runner.serialize import result_to_dict

        cache = TraceCache(tmp_path / "traces")
        specs = [
            JobSpec(program=PROGRAM, scale=SCALE, seed=SEED, consistency=m)
            for m in ("sc", "wo")
        ]
        self._fresh_memo()
        serial = run_jobs(specs, trace_cache=cache).raise_on_failure()
        self._fresh_memo()
        parallel = run_jobs(specs, jobs=2, trace_cache=cache).raise_on_failure()
        for a, b in zip(serial.outcomes, parallel.outcomes):
            assert result_to_dict(a) == result_to_dict(b)

    def test_experiment_uses_trace_cache(self, tmp_path):
        from repro.core.experiment import Experiment

        cache = TraceCache(tmp_path / "traces")
        exp = Experiment(
            program=PROGRAM, scale=SCALE, seed=SEED, trace_cache=cache
        )
        exp.trace()
        assert cache.stats.puts == 1
        exp2 = Experiment(
            program=PROGRAM, scale=SCALE, seed=SEED, trace_cache=cache
        )
        exp2.trace()
        assert cache.stats.hits == 1
