"""Property-based tests of the columnar segment-retirement kernel.

Three families:

* **Analysis against reference** -- the kernel's vectorized span
  analysis (:meth:`SegmentKernel._expand` / ``_probe`` / ``_analyze``)
  against straight-line per-record reference computations over the
  packed window code: the flattened touch list is exactly the reference
  interpreter's chunk order, and the first dynamically-invalid record is
  exactly what a per-record probe of the live cache state finds.

* **Dynamic equivalence** -- random valid multi-processor programs
  (shared data, locks, both schemes, both models, deliberately tiny
  caches and batch budgets) run with ``segment_kernel`` on and off must
  produce byte-identical serialized results AND leave every cache in
  the identical microarchitectural state (MESI dict and LRU ways) --
  columnar retirement is per-record retirement, counter by counter and
  way by way.  Every collapsed span must be whole bounces, disjoint,
  in-order and inside a statically eligible window.

* **Numpy semantics pin** -- the dense retirement path relies on
  integer fancy-assignment applying in index order (duplicate indices
  keep the *last* value).  That is documented numpy behaviour; this
  suite pins it so an upstream change fails loudly here instead of as a
  byte-identity mystery.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.consistency import SEQUENTIAL, WEAK
from repro.machine.cache import EXCLUSIVE
from repro.machine.config import CacheConfig, MachineConfig
from repro.machine.system import System
from repro.runner.serialize import result_to_dict
from repro.sync import QueuingLockManager, TestAndTestAndSetLockManager
from tests.test_trace_properties import build_traceset, trace_programs

schemes = st.sampled_from([QueuingLockManager, TestAndTestAndSetLockManager])
models = st.sampled_from([SEQUENTIAL, WEAK])
programs_strategy = st.lists(trace_programs(max_ops=40), min_size=1, max_size=3)
# tiny caches force capacity evictions; tiny budgets fragment bounces;
# both paths must still agree bit for bit
batches = st.sampled_from([1, 3, 32])
cache_cfgs = st.sampled_from(
    [
        CacheConfig(size_bytes=256, line_bytes=16, assoc=2),
        CacheConfig(size_bytes=1024, line_bytes=16, assoc=2),
        CacheConfig(),
    ]
)


def _canonical(result):
    return json.loads(json.dumps(result_to_dict(result), sort_keys=True))


def _ref_first_invalid(tab, cache, a, b):
    """Per-record reference probe: the first record in ``[a, b)`` that is
    not a silent hit of ``cache``'s current state, or ``b``."""
    sget = cache.state.get
    for r in range(a, b):
        v = tab.code[r]
        if type(v) is int:
            if v >= 0:
                if sget(v, 0) < 1:
                    return r
            elif sget(~v, 0) < EXCLUSIVE:
                return r
        else:
            lo, hi, wr = v
            need = EXCLUSIVE if wr else 1
            if any(sget(line, 0) < need for line in range(lo, hi + 1)):
                return r
    return b


class TestAnalysisAgainstReference:
    @given(programs_strategy)
    @settings(max_examples=40, deadline=None)
    def test_expand_flattens_reference_touch_order(self, programs):
        ts = build_traceset(programs)
        system = System(
            ts, MachineConfig(n_procs=ts.n_procs), QueuingLockManager(), SEQUENTIAL
        )
        kern = system.kernel
        for q in system.procs:
            tab = kern.tabs[q.proc]
            n = len(tab.code)
            starts = [i for i in range(n) if tab.win_end[i] > i]
            for a in starts[:3]:
                b = tab.win_end[a]
                tl, tw, rec = kern._expand(tab, a, b)
                ref = []
                for r in range(a, b):
                    wr = bool(tab.a_wr[r])
                    for line in range(tab.line_lo[r], tab.line_hi[r] + 1):
                        ref.append((line, wr, r - a))
                recs = rec if rec is not None else range(b - a)
                got = [
                    (int(line), bool(wr), int(ri))
                    for line, wr, ri in zip(tl, tw, recs)
                ]
                assert got == ref

    @given(programs_strategy, schemes, models, st.data())
    @settings(max_examples=40, deadline=None)
    def test_probe_matches_per_record_reference(
        self, programs, scheme_cls, model, data
    ):
        """Run to completion (cache state is then maximally interesting:
        hits, evictions, invalidations all happened), then compare the
        vectorized probe against the per-record reference on random
        sub-spans of static windows."""
        ts = build_traceset(programs)
        system = System(
            ts,
            MachineConfig(n_procs=ts.n_procs),
            scheme_cls(),
            model,
            max_events=2_000_000,
        )
        kern = system.kernel
        system.run()
        for q in system.procs:
            tab = kern.tabs[q.proc]
            n = len(tab.code)
            starts = [i for i in range(n) if tab.win_end[i] > i]
            if not starts:
                continue
            a = data.draw(st.sampled_from(starts), label=f"start p{q.proc}")
            b = data.draw(
                st.integers(a + 1, int(tab.win_end[a])), label=f"end p{q.proc}"
            )
            ref = _ref_first_invalid(tab, q.cache, a, b)
            got = kern._probe(q, tab, a, b)
            assert got == (ref if ref < b else -1)
            assert kern._analyze(q, tab, a, b) == ref


class TestDynamicEquivalence:
    @given(programs_strategy, schemes, models, batches, cache_cfgs)
    @settings(max_examples=60, deadline=None)
    def test_kernel_is_byte_identical_and_spans_legal(
        self, programs, scheme_cls, model, batch, cache_cfg
    ):
        ts = build_traceset(programs)
        results = {}
        ways = {}
        states = {}
        ksys = None
        for kern_on in (True, False):
            system = System(
                ts,
                MachineConfig(
                    n_procs=ts.n_procs,
                    cache=cache_cfg,
                    batch_records=batch,
                    segment_kernel=kern_on,
                ),
                scheme_cls(),
                model,
                max_events=2_000_000,
            )
            if kern_on:
                ksys = system
                # engage even on tiny traces: min_span/backoff are cost
                # heuristics, never legality conditions
                system.kernel.min_span = 1
                system.kernel.backoff = 0
                system.kernel._log = []
            results[kern_on] = _canonical(system.run())
            states[kern_on] = [dict(c.state) for c in system.caches]
            ways[kern_on] = [list(c._ways) for c in system.caches]
        assert results[True] == results[False]
        # identical down to the microarchitecture: same resident lines in
        # the same MESI states in the same LRU order
        assert states[True] == states[False]
        assert ways[True] == ways[False]

        # every collapsed span: whole bounces, in order, disjoint, inside
        # a statically eligible window; totals match the kernel's books
        per_proc: dict[int, list] = {}
        for proc, i0, e in ksys.kernel._log:
            per_proc.setdefault(proc, []).append((i0, e))
        total = 0
        for proc, spans in per_proc.items():
            tab = ksys.kernel.tabs[proc]
            last = 0
            for i0, e in spans:
                assert i0 >= last
                assert e - i0 >= batch
                assert (e - i0) % batch == 0
                assert tab.win_end[i0] >= e
                total += e - i0
                last = e
        assert total == ksys.kernel.records

    def test_kernel_actually_collapses_quiet_machines(self):
        """Anti-vacuity: on an uncontended private working set the
        kernel must collapse nearly everything after the cold pass."""
        from tests.conftest import make_traceset

        def prog(b, layout):
            code = layout.alloc_code(1024)
            data = layout.alloc_private(b.proc, 1024)
            # long enough that the kernel's post-rejection backoff (it
            # bails while the working set is cold) is a small fraction
            for _ in range(200):
                b.block(8, 8, code)
                for j in range(8):
                    b.read(data + 64 * j, reps=4)
                    b.write(data + 64 * j, reps=2)

        ts = make_traceset([prog, prog])
        system = System(
            ts, MachineConfig(n_procs=2), QueuingLockManager(), SEQUENTIAL
        )
        system.run()
        kern = system.kernel
        total = sum(len(t.records) for t in ts)
        assert kern.segments > 0
        assert kern.records > 0.8 * total


class TestInterruption:
    def test_max_events_overflow_mid_segment_is_resumable(self):
        """Regression: hitting the engine's ``max_events`` guard at
        *every* possible dispatch point -- including inside a collapsed
        segment's emitted-resume cascade -- leaves the engine's books
        consistent (pending count, time heap and buckets all agree) and
        the run resumable: draining the preserved queue afterwards
        produces the exact uninterrupted result."""
        from tests.conftest import make_traceset

        def prog(b, layout):
            code = layout.alloc_code(1024)
            data = layout.alloc_private(b.proc, 1024)
            for _ in range(80):
                b.block(8, 8, code)
                for j in range(8):
                    b.read(data + 64 * j, reps=4)
                    b.write(data + 64 * j, reps=2)

        ts = make_traceset([prog, prog])

        def build(k=None):
            return System(
                ts,
                MachineConfig(n_procs=2),
                QueuingLockManager(),
                SEQUENTIAL,
                max_events=k,
            )

        ref_sys = build()
        ref = _canonical(ref_sys.run())
        total = ref_sys.engine.dispatched_total
        assert ref_sys.kernel.records > 0  # the segment path engaged

        mid_segment = 0
        for k in range(1, total):
            system = build(k)
            with pytest.raises(RuntimeError, match="exceeded"):
                system.run()
            engine = system.engine
            assert engine.pending() == sum(
                len(b) for b in engine._buckets.values()
            )
            assert sorted(engine._times) == sorted(engine._buckets)
            if system.kernel.segments and not all(p.done for p in system.procs):
                mid_segment += 1
            engine.run()  # drain the preserved tail to completion
            assert _canonical(system._collect()) == ref
        assert mid_segment > 0  # some interruptions landed mid-segment


class TestNumpySemantics:
    @given(st.lists(st.integers(0, 30), min_size=1, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_fancy_assignment_is_last_wins(self, idx_list):
        """The dense last-touch scatter in SegmentKernel._retire assigns
        ``dense[idx] = arange(k)`` and relies on duplicate indices
        keeping the value of their last occurrence."""
        idx = np.asarray(idx_list)
        k = len(idx)
        dense = np.full(31, -1, dtype=np.int64)
        dense[idx] = np.arange(k)
        ref = {}
        for pos, line in enumerate(idx_list):
            ref[line] = pos
        assert dense.tolist() == [ref.get(line, -1) for line in range(31)]
