"""Unit tests for the exact queuing lock, the naive test-and-set
baseline, and the barrier manager."""

import pytest

from repro.sync.barrier import BarrierManager
from repro.sync.exact_queuing import ExactQueuingLockManager
from repro.sync.queuing import QueuingLockManager
from repro.sync.tas import TestAndSetLockManager
from tests.mock_machine import MockMachine, Recorder

LINE = 0x2000_0000 >> 4


def make(mgr_cls, **kw):
    m = MockMachine()
    mgr = mgr_cls(**kw)
    m.attach_manager(mgr)
    return m, mgr, Recorder()


class TestExactQueuing:
    def test_acquire_costs_two_memory_accesses(self):
        m, mgr, rec = make(ExactQueuingLockManager)
        m.at(0, lambda t: mgr.acquire(0, 1, LINE, t, rec.grant_cb(0)))
        m.run()
        assert [e[1] for e in m.log] == ["LOCK_MEM", "LOCK_MEM"]
        assert rec.grants == [(0, 12, False)]

    def test_contended_handoff_goes_to_memory_not_c2c(self):
        m, mgr, rec = make(ExactQueuingLockManager)
        m.at(0, lambda t: mgr.acquire(0, 1, LINE, t, rec.grant_cb(0)))
        m.at(20, lambda t: mgr.acquire(1, 1, LINE, t, rec.grant_cb(1)))
        m.at(100, lambda t: mgr.release(0, 1, LINE, t, rec.release_cb(0)))
        m.run()
        assert mgr.locks[1].owner == 1
        # no LOCK_XFER: Illinois forces the re-read from memory
        assert not m.ops("LOCK_XFER")
        # hand-off latency = a 6-cycle memory access, not a 3-cycle c2c
        assert mgr.stats.snapshot().avg_handoff >= 6

    def test_extra_accesses_vs_approximation(self):
        """The exact scheme issues strictly more bus operations for the
        same locking pattern."""

        def drive(mgr_cls):
            m, mgr, rec = make(mgr_cls)
            m.at(0, lambda t: mgr.acquire(0, 1, LINE, t, rec.grant_cb(0)))
            m.at(30, lambda t: mgr.acquire(1, 1, LINE, t, rec.grant_cb(1)))
            m.at(100, lambda t: mgr.release(0, 1, LINE, t, rec.release_cb(0)))
            m.at(300, lambda t: mgr.release(1, 1, LINE, t, rec.release_cb(1)))
            m.run()
            return len(m.log)

        assert drive(ExactQueuingLockManager) > drive(QueuingLockManager)


class TestTAS:
    def test_uncontended_acquire(self):
        m, mgr, rec = make(TestAndSetLockManager)
        m.at(0, lambda t: mgr.acquire(0, 1, LINE, t, rec.grant_cb(0)))
        m.run()
        assert mgr.locks[1].owner == 0
        assert [e[1] for e in m.log] == ["LOCK_RFO"]

    def test_spinner_hammers_bus_while_held(self):
        m, mgr, rec = make(TestAndSetLockManager, backoff_cycles=10)
        m.at(0, lambda t: mgr.acquire(0, 1, LINE, t, rec.grant_cb(0)))
        m.at(5, lambda t: mgr.acquire(1, 1, LINE, t, rec.grant_cb(1)))
        m.at(200, lambda t: mgr.release(0, 1, LINE, t, rec.release_cb(0)))
        m.run()
        # spinner retried roughly every (RFO + backoff) cycles: far more
        # traffic than T&T&S's single read
        rfos = m.ops("LOCK_RFO")
        assert len(rfos) >= 10
        assert mgr.locks[1].owner == 1

    def test_release_reclaims_stolen_line(self):
        m, mgr, rec = make(TestAndSetLockManager, backoff_cycles=10)
        m.at(0, lambda t: mgr.acquire(0, 1, LINE, t, rec.grant_cb(0)))
        m.at(5, lambda t: mgr.acquire(1, 1, LINE, t, rec.grant_cb(1)))
        m.at(100, lambda t: mgr.release(0, 1, LINE, t, rec.release_cb(0)))
        m.run()
        # the release itself needed an RFO (spinners stole the line)
        releases = [e for e in m.log if e[2] == 0 and e[0] >= 100]
        assert releases

    def test_zero_backoff_rejected_negative(self):
        with pytest.raises(ValueError):
            TestAndSetLockManager(backoff_cycles=-1)

    def test_transfer_stats_recorded(self):
        m, mgr, rec = make(TestAndSetLockManager, backoff_cycles=8)
        m.at(0, lambda t: mgr.acquire(0, 1, LINE, t, rec.grant_cb(0)))
        m.at(5, lambda t: mgr.acquire(1, 1, LINE, t, rec.grant_cb(1)))
        m.at(100, lambda t: mgr.release(0, 1, LINE, t, rec.release_cb(0)))
        m.run()
        s = mgr.stats.snapshot()
        assert s.transfers == 1
        assert s.acquisitions == 2


class TestBarrier:
    def _mgr(self, n):
        m = MockMachine()
        mgr = BarrierManager(n_procs=n, line=LINE)
        mgr.attach(m)
        return m, mgr

    def test_all_wait_until_last_arrival(self):
        m, mgr = self._mgr(3)
        resumed = []
        for p, t in [(0, 0), (1, 50), (2, 200)]:
            m.at(t, lambda t2, p=p: mgr.arrive(p, 0, t2, lambda t3, c, p=p: resumed.append((p, t3))))
        m.run()
        assert sorted(r[0] for r in resumed) == [0, 1, 2]
        # nobody resumed before the last arrival
        assert min(r[1] for r in resumed) >= 200

    def test_waiters_seen_average_below_half(self):
        """The paper's §3.1 barrier bound: average waiters seen at
        arrival is (P-1)/2 < P/2."""
        n = 8
        m, mgr = self._mgr(n)
        for p in range(n):
            m.at(p * 10, lambda t, p=p: mgr.arrive(p, 0, t, lambda t2, c: None))
        m.run()
        assert mgr.stats.episodes == 1
        assert mgr.stats.avg_waiters_seen == pytest.approx((n - 1) / 2)
        assert mgr.stats.avg_waiters_seen < n / 2

    def test_multiple_episodes(self):
        n = 2
        m, mgr = self._mgr(n)
        resumed = []
        for b in range(3):
            for p in range(n):
                m.at(
                    100 * b + p,
                    lambda t, p=p, b=b: mgr.arrive(
                        p, b, t, lambda t2, c: resumed.append((b, p))
                    ),
                )
        m.run()
        assert mgr.stats.episodes == 3
        assert len(resumed) == 6

    def test_last_arrival_not_contended(self):
        m, mgr = self._mgr(2)
        flags = {}
        m.at(0, lambda t: mgr.arrive(0, 0, t, lambda t2, c: flags.setdefault(0, c)))
        m.at(50, lambda t: mgr.arrive(1, 0, t, lambda t2, c: flags.setdefault(1, c)))
        m.run()
        assert flags[0] is True  # waited
        assert flags[1] is False  # last in, straight through
