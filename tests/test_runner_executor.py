"""The batch executor: serial/parallel equivalence, structured failure
capture (a faulty job never aborts the batch), timeouts, retries, the
JSONL manifest, resume, and the suite rewiring on top of it all."""

import json

import pytest

from repro.core import table3, table5
from repro.core.experiment import run_suite
from repro.core.sweep import sweep_procs
from repro.runner import (
    JobFailure,
    JobSpec,
    ResultCache,
    load_records,
    run_jobs,
)

GOOD = JobSpec(program="fullconn", scale=0.05)
GOOD2 = JobSpec(program="qsort", scale=0.05)
#: raises ValueError deep in the worker (unknown workload)
FAULTY = JobSpec(program="does-not-exist", scale=0.05)
#: far too much work for a millisecond-scale timeout
SLOW = JobSpec(program="grav", scale=0.3)


class TestSerialPath:
    def test_outcomes_in_spec_order(self):
        batch = run_jobs([GOOD, GOOD2])
        assert [r.program for r in batch.outcomes] == ["fullconn", "qsort"]
        assert batch.ok()
        assert batch.stats.executed == 2

    def test_equals_direct_run(self):
        batch = run_jobs([GOOD])
        assert batch.outcomes[0] == GOOD.run()


class TestFailureCapture:
    def test_faulty_job_does_not_abort_batch(self, tmp_path):
        manifest = tmp_path / "batch.jsonl"
        batch = run_jobs(
            [GOOD, FAULTY, GOOD2], jobs=2, manifest_path=manifest
        )
        assert not batch.ok()
        failure = batch.outcomes[1]
        assert isinstance(failure, JobFailure)
        assert failure.kind == "error"
        assert "does-not-exist" in failure.message
        assert failure.attempts == 1
        # the other jobs still completed
        assert batch.outcomes[0].program == "fullconn"
        assert batch.outcomes[2].program == "qsort"
        # and the failure is in the manifest
        statuses = {r["label"]: r["status"] for r in load_records(manifest)}
        assert statuses["does-not-exist/queuing/sc"] == "failed"
        assert statuses["fullconn/queuing/sc"] == "ok"

    def test_failure_serial_path_too(self):
        batch = run_jobs([FAULTY, GOOD])
        assert isinstance(batch.outcomes[0], JobFailure)
        assert batch.outcomes[1].program == "fullconn"

    def test_timeout_becomes_structured_failure(self):
        batch = run_jobs([SLOW], timeout=0.01)
        failure = batch.outcomes[0]
        assert isinstance(failure, JobFailure)
        assert failure.kind == "timeout"

    def test_timeout_in_worker_process(self):
        batch = run_jobs([SLOW], jobs=2, timeout=0.01)
        assert isinstance(batch.outcomes[0], JobFailure)
        assert batch.outcomes[0].kind == "timeout"

    def test_retries_counted_and_bounded(self):
        batch = run_jobs([FAULTY], retries=2)
        assert batch.stats.retries == 2
        assert batch.outcomes[0].attempts == 3

    def test_raise_on_failure(self):
        with pytest.raises(RuntimeError, match="1 job\\(s\\) failed"):
            run_jobs([FAULTY]).raise_on_failure()


class TestManifestAndResume:
    def test_manifest_records_every_outcome(self, tmp_path):
        manifest = tmp_path / "m.jsonl"
        run_jobs([GOOD, FAULTY], manifest_path=manifest)
        records = load_records(manifest)
        assert [r["status"] for r in records] == ["ok", "failed"]
        assert all("spec" in r and "key" in r for r in records)
        assert "result" in records[0]
        assert records[1]["error"]["kind"] == "error"

    def test_resume_restores_completed_jobs(self, tmp_path):
        manifest = tmp_path / "m.jsonl"
        first = run_jobs([GOOD, FAULTY], manifest_path=manifest)
        second = run_jobs([GOOD, FAULTY], manifest_path=manifest, resume=True)
        assert second.stats.resumed == 1
        assert second.stats.executed == 0  # completed job NOT re-simulated
        assert second.outcomes[0] == first.outcomes[0]
        assert isinstance(second.outcomes[1], JobFailure)  # failures re-run

    def test_resume_requires_manifest(self):
        with pytest.raises(ValueError, match="manifest_path"):
            run_jobs([GOOD], resume=True)

    def test_manifest_tolerates_torn_lines(self, tmp_path):
        manifest = tmp_path / "m.jsonl"
        run_jobs([GOOD], manifest_path=manifest)
        with manifest.open("a") as fh:
            fh.write('{"key": "trunca')  # interrupted write
        batch = run_jobs([GOOD], manifest_path=manifest, resume=True)
        assert batch.stats.resumed == 1


class TestCachedBatch:
    def test_second_invocation_executes_nothing(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        specs = [GOOD, GOOD2]
        first = run_jobs(specs, cache=cache)
        assert first.stats.executed == 2
        second = run_jobs(specs, cache=cache)
        assert second.stats.executed == 0
        assert second.stats.cached == 2
        assert cache.stats.hits == 2
        assert second.outcomes == first.outcomes

    def test_failures_are_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        run_jobs([FAULTY], cache=cache)
        assert cache.count() == 0


class TestSuiteRewiring:
    """Acceptance: parallel + cached suite output is byte-identical to
    the serial path, and a warm cache re-runs zero simulations."""

    PROGRAMS = ["fullconn", "qsort"]

    @pytest.fixture(scope="class")
    def serial(self):
        return run_suite(programs=self.PROGRAMS, scale=0.05)

    def test_parallel_suite_results_identical(self, serial, tmp_path):
        cache = ResultCache(tmp_path / "c")
        par = run_suite(programs=self.PROGRAMS, scale=0.05, jobs=4, cache=cache)
        assert par.queuing_sc == serial.queuing_sc
        assert par.ttas_sc == serial.ttas_sc
        assert par.queuing_wo == serial.queuing_wo

    def test_tables_byte_identical_and_cached_rerun_is_free(self, serial, tmp_path):
        cache = ResultCache(tmp_path / "c")
        par = run_suite(programs=self.PROGRAMS, scale=0.05, jobs=2, cache=cache)
        assert table3(suite=par)[0] == table3(suite=serial)[0]
        assert table5(suite=par)[0] == table5(suite=serial)[0]
        assert par.batch.stats.executed == 6  # 2 programs x 3 configs
        warm = run_suite(programs=self.PROGRAMS, scale=0.05, jobs=2, cache=cache)
        assert warm.batch.stats.executed == 0  # zero simulations executed
        assert warm.batch.stats.cached == 6
        assert cache.stats.hits >= 6
        assert table3(suite=warm)[0] == table3(suite=serial)[0]

    def test_suite_raises_on_failure(self):
        with pytest.raises(RuntimeError, match="failed"):
            run_suite(programs=["no-such-benchmark"], scale=0.05)


class TestSweepRewiring:
    def test_parallel_sweep_matches_serial(self, tmp_path):
        serial = sweep_procs("fullconn", [2, 4], scale=0.05)
        par = sweep_procs(
            "fullconn", [2, 4], scale=0.05, jobs=2, cache=ResultCache(tmp_path / "c")
        )
        assert [p.result for p in par] == [p.result for p in serial]
        assert [p.label for p in par] == [p.label for p in serial]


class TestSpecRoundTrip:
    def test_to_from_dict(self):
        spec = JobSpec(
            program="grav",
            scale=0.25,
            seed=3,
            lock_scheme="ttas",
            lock_kwargs={"burst": 2},
            consistency="wo",
            n_procs=6,
            max_events=99,
        )
        clone = JobSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec
        assert clone.cache_key() == spec.cache_key()

    def test_label(self):
        assert GOOD.label() == "fullconn/queuing/sc"
