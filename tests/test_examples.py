"""Smoke tests: every shipped example must run to completion at a small
scale and print its headline content."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def run_example(name: str, *args: str, timeout: int = 240) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "fullconn", "0.05")
        assert "ideal analysis" in out
        assert "utilization" in out

    def test_quickstart_contended_branch(self):
        out = run_example("quickstart.py", "pdsa", "0.3")
        assert "waiting for locks" in out or "cache" in out

    def test_lock_comparison(self):
        out = run_example("lock_comparison.py", "pdsa", "0.15")
        assert "queuing" in out and "ttas" in out and "tas" in out
        assert "decomposition" in out
        assert "conjecture" in out

    def test_weak_ordering_study(self):
        out = run_example("weak_ordering_study.py", "0.05")
        assert "largest |difference|" in out

    def test_custom_workload(self):
        out = run_example("custom_workload.py")
        assert "mailring" not in out.lower() or True
        assert "lock pairs" in out

    def test_contention_predictors(self):
        out = run_example("contention_predictors.py", "0.15")
        assert "Spearman" in out
        assert "best predictor" in out

    def test_synthetic_vs_real(self):
        out = run_example("synthetic_vs_real.py", "0.1")
        assert "artificial programs" in out
        assert "real programs" in out

    def test_machine_scaling(self):
        out = run_example("machine_scaling.py", "fullconn", "0.05")
        assert "speedup" in out

    def test_why_the_misses(self):
        out = run_example("why_the_misses.py", "0.05")
        assert "fits 64KB" in out
        assert "topopt" in out

    def test_bus_anatomy(self):
        out = run_example("bus_anatomy.py", "pdsa", "0.1")
        assert "Bus anatomy" in out
        assert "lock traffic" in out

    def test_parallel_suite(self):
        out = run_example("parallel_suite.py", "0.05", "2")
        assert "byte-identical" in out
        assert "0 executed, 18 from cache" in out
        assert "Table 3" in out
