"""Property tests: the inspection and footprint tools must handle any
valid trace without crashing, and their numbers must agree with the
statistics module."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.footprint import proc_footprint, sharing_profile
from repro.trace.inspect import dump_records, lock_event_log, summarize_traceset
from repro.trace.records import LOCK, UNLOCK
from repro.trace.stats import compute_trace_stats
from tests.test_trace_properties import build_traceset, trace_programs

programs_strategy = st.lists(trace_programs(max_ops=30), min_size=1, max_size=3)


class TestInspectProperties:
    @given(programs_strategy)
    @settings(max_examples=40, deadline=None)
    def test_summary_never_crashes(self, programs):
        ts = build_traceset(programs)
        text = summarize_traceset(ts)
        assert "program" in text
        # one summary row per processor
        assert text.count("\n") >= ts.n_procs

    @given(programs_strategy, st.integers(0, 100), st.integers(1, 50))
    @settings(max_examples=40, deadline=None)
    def test_dump_any_window(self, programs, start, count):
        ts = build_traceset(programs)
        text = dump_records(ts[0], start=start, count=count)
        assert "records" in text

    @given(programs_strategy)
    @settings(max_examples=40, deadline=None)
    def test_lock_log_matches_stats(self, programs):
        ts = build_traceset(programs)
        events = lock_event_log(ts)
        locks = sum(1 for e in events if e[3] == "LOCK")
        unlocks = sum(1 for e in events if e[3] == "UNLOCK")
        expected = sum(compute_trace_stats(t).lock_pairs for t in ts)
        assert locks == unlocks == expected

    @given(programs_strategy)
    @settings(max_examples=40, deadline=None)
    def test_footprint_consistent_with_stats(self, programs):
        ts = build_traceset(programs)
        for t in ts:
            fp = proc_footprint(t)
            s = compute_trace_stats(t)
            # lines <= elementary references of each category
            assert fp.data_lines <= max(1, s.data_refs) or s.data_refs == 0
            assert fp.shared_data_lines <= fp.data_lines
            if s.data_refs == 0:
                assert fp.data_lines == 0

    @given(programs_strategy)
    @settings(max_examples=30, deadline=None)
    def test_sharing_profile_bounds(self, programs):
        ts = build_traceset(programs)
        prof = sharing_profile(ts)
        assert 0 <= prof.actively_shared <= prof.shared_lines
        assert 0 <= prof.write_shared <= prof.shared_lines
        assert 0.0 <= prof.active_fraction <= 1.0
        union = set()
        for f in prof.footprints:
            assert f.shared_data_lines <= f.data_lines
        # union of per-proc shared lines == profile's shared_lines
        total_per_proc = sum(f.shared_data_lines for f in prof.footprints)
        assert prof.shared_lines <= max(1, total_per_proc) or total_per_proc == 0
