"""Property-based contract tests for the whole lock-scheme registry.

Where tests/test_locks_properties.py drives the four original schemes
through flat critical sections, this suite stresses the shapes the
extension lock zoo must also survive, over every scheme in
``repro.sync.LOCK_SCHEMES``:

* random acquire/release with *nesting* -- ordered multi-lock critical
  sections (always acquired in ascending lock order, so the scripts
  are deadlock-free by construction);
* hand-over-hand (lock-coupling) chains -- the next lock is taken
  before the previous one is dropped, the pattern that breaks managers
  which assume release order mirrors acquire order;
* same-cycle contention storms -- every processor requests the same
  lock at time zero;
* shadow-queue agreement -- full-machine runs under a collect-mode
  auditor must come back violation-free for every scheme (FIFO order,
  queue-node hand-off, stats cross-accounting);
* byte-identity -- each optimization knob (interpreter fast path, bus
  fast path, segment kernel) toggled *individually* must leave every
  scheme's serialized results untouched.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audit import SystemAuditor
from repro.consistency import SEQUENTIAL
from repro.machine.system import System
from repro.sync import LOCK_SCHEMES, get_lock_manager
from repro.testing.differential import VARY_ALL, run_cell
from tests.conftest import make_traceset, tiny_machine
from tests.mock_machine import MockMachine
from tests.test_locks_in_system import contended_traceset

BASE_LINE = 0x2000_0000 >> 4

scheme_names = st.sampled_from(sorted(LOCK_SCHEMES))

#: per-processor scripts of nested critical sections: (start_delay,
#: ordered lock ids to hold together, cycles to hold them)
nested_scripts = st.lists(
    st.lists(
        st.tuples(
            st.integers(0, 100),
            st.sets(st.integers(1, 3), min_size=1, max_size=3).map(sorted),
            st.integers(1, 60),
        ),
        min_size=1,
        max_size=3,
    ),
    min_size=2,
    max_size=4,
)


def _line(lock_id: int) -> int:
    return BASE_LINE + lock_id


class NestedDriver:
    """Acquires a section's locks in ascending order, holds, releases
    in descending order, then moves to the next section."""

    def __init__(self, machine, mgr, proc, script, log):
        self.machine = machine
        self.mgr = mgr
        self.proc = proc
        self.script = list(script)
        self.log = log
        self.done = False

    def start(self):
        self._next_section(0)

    def _next_section(self, t):
        if not self.script:
            self.done = True
            return
        delay, locks, hold = self.script.pop(0)
        self.machine.at(t + delay, lambda t2: self._acquire(list(locks), locks, hold, t2))

    def _acquire(self, todo, locks, hold, t):
        if not todo:
            self.machine.at(t + hold, lambda t2: self._release(list(reversed(locks)), t2))
            return
        lid = todo.pop(0)

        def granted(t2, contended, lid=lid):
            self.log.append(("acq", self.proc, lid, t2))
            self._acquire(todo, locks, hold, t2)

        self.mgr.acquire(self.proc, lid, _line(lid), t, granted)

    def _release(self, todo, t):
        if not todo:
            self._next_section(t)
            return
        lid = todo.pop(0)
        self.log.append(("rel", self.proc, lid, t))
        self.mgr.release(self.proc, lid, _line(lid), t, lambda t2, _c: self._release(todo, t2))


class HandOverHandDriver:
    """Lock coupling down a chain: take lock i+1, then drop lock i."""

    def __init__(self, machine, mgr, proc, delay, chain, hold, log):
        self.machine = machine
        self.mgr = mgr
        self.proc = proc
        self.delay = delay
        self.chain = list(chain)
        self.hold = hold
        self.log = log
        self.done = False

    def start(self):
        first = self.chain[0]
        self.machine.at(
            self.delay,
            lambda t: self.mgr.acquire(self.proc, first, _line(first), t, self._granted(0)),
        )

    def _granted(self, idx):
        def cb(t, contended):
            self.log.append(("acq", self.proc, self.chain[idx], t))
            self.machine.at(t + self.hold, lambda t2: self._advance(idx, t2))

        return cb

    def _advance(self, idx, t):
        if idx + 1 < len(self.chain):
            nxt = self.chain[idx + 1]
            self.mgr.acquire(self.proc, nxt, _line(nxt), t, self._coupled(idx))
        else:
            self._drop(self.chain[idx], t, final=True)

    def _coupled(self, idx):
        def cb(t, contended):
            self.log.append(("acq", self.proc, self.chain[idx + 1], t))
            self._drop(self.chain[idx], t, final=False, next_idx=idx + 1)

        return cb

    def _drop(self, lid, t, final, next_idx=0):
        self.log.append(("rel", self.proc, lid, t))

        def released(t2, _contended):
            if final:
                self.done = True
            else:
                self.machine.at(t2 + self.hold, lambda t3: self._advance(next_idx, t3))

        self.mgr.release(self.proc, lid, _line(lid), t, released)


def _check_safety(log):
    """Per-lock alternation: an acquire only on a free lock, a release
    only by the holder."""
    holder: dict[int, int | None] = {}
    for kind, proc, lid, _t in sorted(log, key=lambda e: (e[3], e[0] == "acq")):
        if kind == "acq":
            assert holder.get(lid) is None, (
                f"proc {proc} acquired lock {lid} held by {holder[lid]}"
            )
            holder[lid] = proc
        else:
            assert holder.get(lid) == proc
            holder[lid] = None
    assert all(h is None for h in holder.values())


class TestNestedAndCoupled:
    @given(scheme_names, nested_scripts)
    @settings(max_examples=60, deadline=None)
    def test_nested_sections_safe_and_live(self, scheme, scripts):
        m = MockMachine()
        mgr = get_lock_manager(scheme)
        m.attach_manager(mgr)
        log = []
        drivers = [NestedDriver(m, mgr, p, s, log) for p, s in enumerate(scripts)]
        for d in drivers:
            d.start()
        m.run()
        assert all(d.done for d in drivers)
        total = sum(len(locks) for s in scripts for _d, locks, _h in s)
        assert len([e for e in log if e[0] == "acq"]) == total
        assert len([e for e in log if e[0] == "rel"]) == total
        _check_safety(log)
        mgr.check_invariants()
        assert mgr.stats.snapshot().acquisitions == total

    @given(
        scheme_names,
        st.lists(st.tuples(st.integers(0, 50), st.integers(1, 30)), min_size=2, max_size=4),
        st.integers(2, 4),
    )
    @settings(max_examples=60, deadline=None)
    def test_hand_over_hand_chains(self, scheme, procs, chain_len):
        m = MockMachine()
        mgr = get_lock_manager(scheme)
        m.attach_manager(mgr)
        log = []
        chain = list(range(1, chain_len + 1))
        drivers = [
            HandOverHandDriver(m, mgr, p, delay, chain, hold, log)
            for p, (delay, hold) in enumerate(procs)
        ]
        for d in drivers:
            d.start()
        m.run()
        assert all(d.done for d in drivers)
        assert len([e for e in log if e[0] == "acq"]) == len(procs) * chain_len
        _check_safety(log)
        mgr.check_invariants()

    @given(scheme_names, st.integers(2, 8), st.integers(1, 50))
    @settings(max_examples=60, deadline=None)
    def test_same_cycle_contention_storm(self, scheme, n_procs, hold):
        """Every processor requests the same lock at time zero."""
        m = MockMachine()
        mgr = get_lock_manager(scheme)
        m.attach_manager(mgr)
        log = []
        scripts = [[(0, [1], hold)]] * n_procs
        drivers = [NestedDriver(m, mgr, p, s, log) for p, s in enumerate(scripts)]
        for d in drivers:
            d.start()
        m.run()
        assert all(d.done for d in drivers)
        _check_safety(log)
        stats = mgr.stats.snapshot()
        assert stats.acquisitions == n_procs
        # a storm of n requests resolves into at most n-1 hand-offs
        assert stats.transfers <= n_procs - 1


@given(scheme_names, st.integers(2, 5), st.integers(2, 5))
@settings(max_examples=15, deadline=None)
def test_shadow_queue_agreement_full_machine(scheme, n_procs, css):
    """A collect-mode auditor sees zero violations on a full-machine
    contended run: the manager's queue behaviour agrees with the
    auditor's shadow queue (enqueue order, hand-off successor, claim
    legality) and its stats with the observed totals."""
    ts = contended_traceset(n_procs=n_procs, css=css)
    system = System(ts, tiny_machine(n_procs=n_procs), get_lock_manager(scheme), SEQUENTIAL)
    auditor = SystemAuditor.attach(system, mode="collect")
    system.run()
    assert auditor.report.violations == [], [
        str(v) for v in auditor.report.violations
    ]


@pytest.mark.parametrize("knob", VARY_ALL)
@pytest.mark.parametrize("scheme", sorted(LOCK_SCHEMES))
def test_byte_identity_per_knob(scheme, knob):
    """Toggling one optimization knob at a time must not change a
    single serialized field under any lock scheme."""
    ts = contended_traceset(n_procs=4, css=4)
    rep = run_cell(ts, scheme, "sc", program="prop", vary=(knob,))
    assert rep.equal, rep.diffs
