"""Tests for the consistency-model policy objects and their registry."""

import pytest

from repro.consistency import SEQUENTIAL, WEAK, get_model
from repro.consistency.sequential import SequentialConsistency
from repro.consistency.weak import WeakOrdering


class TestPolicies:
    def test_sequential_flags(self):
        m = SEQUENTIAL
        assert m.stall_on_write_miss
        assert m.stall_on_upgrade
        assert not m.bypass_reads
        assert not m.drain_at_sync
        assert m.name == "sc"

    def test_weak_flags(self):
        m = WEAK
        assert not m.stall_on_write_miss
        assert not m.stall_on_upgrade
        assert m.bypass_reads
        assert m.drain_at_sync
        assert m.name == "wo"

    def test_models_frozen(self):
        with pytest.raises(Exception):
            SEQUENTIAL.name = "x"

    def test_str(self):
        assert str(SEQUENTIAL) == "sc"
        assert str(WEAK) == "wo"


class TestRegistry:
    @pytest.mark.parametrize("alias", ["sc", "SC", "sequential"])
    def test_sequential_aliases(self, alias):
        assert isinstance(get_model(alias), SequentialConsistency)

    @pytest.mark.parametrize("alias", ["wo", "WO", "weak"])
    def test_weak_aliases(self, alias):
        assert isinstance(get_model(alias), WeakOrdering)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown consistency"):
            get_model("release-consistency")


class TestBehavioralContrast:
    """The two models must actually diverge on a write-heavy trace and
    agree on a read-only one."""

    def _run(self, fn, model, n=1):
        from repro.machine.system import System
        from repro.sync import QueuingLockManager
        from tests.conftest import make_traceset, tiny_machine

        ts = make_traceset([fn] * n)
        return System(ts, tiny_machine(n_procs=n), QueuingLockManager(), model).run()

    def test_write_heavy_trace_faster_under_wo(self):
        def fn(b, layout):
            sh = layout.alloc_shared(65536)
            code = layout.alloc_code(16)
            for i in range(64):
                b.write(sh + i * 16)
                b.block(1, 3, code)

        sc = self._run(fn, SEQUENTIAL)
        wo = self._run(fn, WEAK)
        assert wo.run_time < sc.run_time

    def test_read_only_trace_identical(self):
        def fn(b, layout):
            sh = layout.alloc_shared(1024)
            for i in range(32):
                b.read(sh + i * 16)

        sc = self._run(fn, SEQUENTIAL)
        wo = self._run(fn, WEAK)
        assert wo.run_time == sc.run_time

    def test_wo_results_stamped(self):
        def fn(b, layout):
            b.read(layout.alloc_shared(16))

        wo = self._run(fn, WEAK)
        assert wo.consistency == "wo"
