"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_table_number_validated(self):
        p = build_parser()
        with pytest.raises(SystemExit):
            p.parse_args(["table", "9"])

    def test_global_options(self):
        args = build_parser().parse_args(["--scale", "0.5", "--seed", "7", "figure1"])
        assert args.scale == 0.5
        assert args.seed == 7

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "grav"])
        assert args.locks == "queuing"
        assert args.model == "sc"

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_figure1(self, capsys):
        assert main(["figure1"]) == 0
        out = capsys.readouterr().out
        assert "Model Architecture" in out

    def test_ideal_small(self, capsys):
        assert main(["--scale", "0.02", "ideal"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out and "Table 2" in out
        assert "grav" in out

    def test_run_small(self, capsys):
        assert main(["--scale", "0.05", "run", "fullconn"]) == 0
        out = capsys.readouterr().out
        assert "utilization" in out
        assert "locks=queuing" in out

    def test_run_with_options(self, capsys):
        assert main(["--scale", "0.05", "run", "qsort", "--locks", "ttas", "--model", "wo"]) == 0
        out = capsys.readouterr().out
        assert "locks=ttas" in out
        assert "model=wo" in out

    def test_generate_then_simulate(self, tmp_path, capsys):
        out_file = str(tmp_path / "t.npz")
        assert main(["--scale", "0.05", "generate", "pverify", "-o", out_file]) == 0
        assert main(["simulate", out_file]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        assert "pverify" in out

    def test_table_1(self, capsys):
        assert main(["--scale", "0.02", "table", "1"]) == 0
        assert "Table 1" in capsys.readouterr().out

    def test_table_4_runs_simulation(self, capsys):
        assert main(["--scale", "0.05", "table", "4"]) == 0
        out = capsys.readouterr().out
        assert "Waiters at Transfer" in out

    def test_unknown_workload_errors(self):
        with pytest.raises(ValueError):
            main(["run", "nosuch"])

    def test_profile_command(self, capsys):
        assert main(["--scale", "0.05", "profile", "pdsa"]) == 0
        out = capsys.readouterr().out
        assert "Per-lock contention profile" in out
        assert "presto.scheduler" in out

    def test_inspect_workload(self, capsys):
        assert main(["--scale", "0.05", "inspect", "fullconn"]) == 0
        out = capsys.readouterr().out
        assert "program 'fullconn'" in out
        assert "12 processors" in out

    def test_inspect_with_dump(self, capsys):
        assert main(["--scale", "0.05", "inspect", "qsort", "--dump", "5"]) == 0
        out = capsys.readouterr().out
        assert "records [0:5]" in out

    def test_inspect_trace_file(self, tmp_path, capsys):
        f = str(tmp_path / "x.npz")
        main(["--scale", "0.05", "generate", "topopt", "-o", f])
        assert main(["inspect", f]) == 0
        assert "topopt" in capsys.readouterr().out

    def test_claims_parser_registered(self):
        args = build_parser().parse_args(["claims"])
        assert args.cmd == "claims"

    def test_locks_choices_track_the_registry(self):
        from repro.sync import LOCK_SCHEMES

        p = build_parser()
        for scheme in LOCK_SCHEMES:
            args = p.parse_args(["run", "grav", "--locks", scheme])
            assert args.locks == scheme
        with pytest.raises(SystemExit):
            p.parse_args(["run", "grav", "--locks", "nosuch"])

    def test_predict_closed_form(self, capsys):
        assert main(["--scale", "0.05", "predict", "qsort", "--no-trace-cache"]) == 0
        out = capsys.readouterr().out
        assert "calibrated on 'queuing'" in out
        # one row per registered scheme
        from repro.sync import LOCK_SCHEMES

        for scheme in LOCK_SCHEMES:
            assert scheme in out

    def test_predict_validate_subset(self, capsys):
        assert (
            main(
                [
                    "--scale",
                    "0.05",
                    "predict",
                    "qsort",
                    "--schemes",
                    "queuing,mcs",
                    "--validate",
                    "--no-trace-cache",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "mean relative error" in out
        assert "mcs" in out

    def test_predict_unknown_scheme_errors(self, capsys):
        assert main(["predict", "qsort", "--schemes", "nosuch"]) == 2
        assert "unknown lock scheme" in capsys.readouterr().err

    def test_contention_report(self, capsys):
        assert main(["--scale", "0.05", "contention-report", "qsort", "--no-trace-cache"]) == 0
        out = capsys.readouterr().out
        assert "verdict" in out
        assert "lock(s);" in out

    def test_contention_report_with_simulation(self, capsys):
        assert (
            main(
                [
                    "--scale",
                    "0.05",
                    "contention-report",
                    "pverify",
                    "--simulate",
                    "ticket",
                    "--no-trace-cache",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "transfers" in out

    def test_run_no_spin_kernel(self, capsys):
        assert main(["--scale", "0.05", "run", "qsort", "--no-spin-kernel"]) == 0
        assert "utilization" in capsys.readouterr().out

    def test_run_profile_prints_diagnostics(self, capsys):
        assert main(["--scale", "0.05", "run", "qsort", "--profile", "3"]) == 0
        out = capsys.readouterr().out
        assert "diagnostics" in out
        assert "kernel_attempts" in out
        assert "spin_segments" in out
        assert "Ordered by: internal time" in out

    def test_predict_json_round_trips(self, capsys):
        """``predict --json`` emits one JSON object that parses back to
        exactly the closed-form predictions the text path prints."""
        import json

        from repro.consistency import SEQUENTIAL
        from repro.machine.system import simulate
        from repro.sync import get_lock_manager
        from repro.sync.predict import calibrate, predict
        from repro.workloads import generate_trace

        assert (
            main(
                [
                    "--scale",
                    "0.05",
                    "predict",
                    "qsort",
                    "--schemes",
                    "queuing,ticket",
                    "--json",
                    "--no-trace-cache",
                ]
            )
            == 0
        )
        doc = json.loads(capsys.readouterr().out)
        assert doc["program"] == "qsort"
        assert [p["scheme"] for p in doc["predictions"]] == ["queuing", "ticket"]
        # round trip: the serialized numbers are the library's own
        ts = generate_trace("qsort", scale=0.05, seed=1991)
        base = simulate(ts, None, get_lock_manager("queuing"), SEQUENTIAL)
        cal = calibrate(ts, base)
        assert doc["calibration"]["kappa"] == cal.kappa
        for got in doc["predictions"]:
            pred = predict(ts, got["scheme"], cal)
            assert got["lock_share"] == pred.lock_share
            assert got["bus_share"] == pred.bus_share
            assert got["stall_cycles"] == pred.stall_cycles

    def test_predict_validate_json_round_trips(self, capsys):
        assert (
            main(
                [
                    "--scale",
                    "0.05",
                    "predict",
                    "qsort",
                    "--schemes",
                    "queuing",
                    "--validate",
                    "--json",
                    "--no-trace-cache",
                ]
            )
            == 0
        )
        import json

        doc = json.loads(capsys.readouterr().out)
        (row,) = doc["rows"]
        assert row["scheme"] == "queuing"
        assert set(row) >= {
            "predicted_lock_share",
            "observed_lock_share",
            "lock_rel_err",
            "predicted_bus_share",
            "observed_bus_share",
            "bus_rel_err",
        }

    def test_contention_report_json_round_trips(self, capsys):
        """``contention-report --json`` parses back to the library's own
        per-lock verdicts, field for field."""
        import json
        from dataclasses import asdict

        from repro.sync.predict import contention_report
        from repro.workloads import generate_trace

        assert (
            main(
                [
                    "--scale",
                    "0.05",
                    "contention-report",
                    "qsort",
                    "--json",
                    "--no-trace-cache",
                ]
            )
            == 0
        )
        doc = json.loads(capsys.readouterr().out)
        assert doc["program"] == "qsort"
        assert doc["simulated_scheme"] is None
        ts = generate_trace("qsort", scale=0.05, seed=1991)
        expected = [asdict(v) for v in contention_report(ts)]
        assert doc["verdicts"] == expected
