"""Unit tests for bus operations and the cache--bus buffer."""

import pytest

from repro.machine.buffers import (
    READ_MISS,
    RFO,
    WRITEBACK,
    BusOp,
    CacheBusBuffer,
)


def op(kind=READ_MISS, line=1, proc=0):
    return BusOp(kind, line, proc)


class TestQueueDiscipline:
    def test_fifo_order(self):
        buf = CacheBusBuffer(0, depth=4)
        a, b = op(line=1), op(line=2)
        buf.push(a)
        buf.push(b)
        assert buf.pop() is a
        assert buf.pop() is b

    def test_push_front_bypasses(self):
        buf = CacheBusBuffer(0, depth=4)
        w = op(RFO, line=1)
        r = op(READ_MISS, line=2)
        buf.push(w)
        buf.push_front(r)
        assert buf.pop() is r
        assert buf.pop() is w

    def test_peek_does_not_remove(self):
        buf = CacheBusBuffer(0, depth=4)
        a = op()
        buf.push(a)
        assert buf.peek() is a
        assert buf.peek() is a
        assert len(buf) == 1

    def test_peek_empty(self):
        assert CacheBusBuffer(0, 4).peek() is None

    def test_has_space_respects_depth(self):
        buf = CacheBusBuffer(0, depth=2)
        buf.push(op(line=1))
        assert buf.has_space()
        buf.push(op(line=2))
        assert not buf.has_space()

    def test_max_occupancy_high_water(self):
        buf = CacheBusBuffer(0, depth=8)
        for i in range(5):
            buf.push(op(line=i))
        for _ in range(3):
            buf.pop()
        buf.push(op(line=9))
        assert buf.max_occupancy == 5


class TestCancellation:
    def test_cancelled_entries_skipped_by_peek(self):
        buf = CacheBusBuffer(0, depth=4)
        a, b = op(WRITEBACK, line=1), op(READ_MISS, line=2)
        buf.push(a)
        buf.push(b)
        buf.cancel(a)
        assert buf.peek() is b
        assert len(buf) == 1

    def test_find_matches_kind_and_line(self):
        buf = CacheBusBuffer(0, depth=4)
        wb = op(WRITEBACK, line=7)
        buf.push(op(READ_MISS, line=7))
        buf.push(wb)
        assert buf.find(WRITEBACK, 7) is wb
        assert buf.find(WRITEBACK, 8) is None

    def test_find_ignores_cancelled(self):
        buf = CacheBusBuffer(0, depth=4)
        wb = op(WRITEBACK, line=7)
        buf.push(wb)
        buf.cancel(wb)
        assert buf.find(WRITEBACK, 7) is None


class TestSpaceWaiters:
    def test_waiter_notified_when_space_frees(self):
        buf = CacheBusBuffer(0, depth=1)
        buf.push(op(line=1))
        calls = []
        buf.wait_for_space(lambda t: calls.append(t))
        buf.notify_space(5)  # still full? no: notify checks has_space
        assert calls == []  # buffer still full
        buf.pop()
        buf.notify_space(9)
        assert calls == [9]

    def test_multiple_waiters_all_notified(self):
        buf = CacheBusBuffer(0, depth=2)
        buf.push(op(line=1))
        buf.push(op(line=2))
        calls = []
        buf.wait_for_space(lambda t: calls.append("a"))
        buf.wait_for_space(lambda t: calls.append("b"))
        buf.pop()
        buf.notify_space(1)
        assert calls == ["a", "b"]

    def test_notify_without_waiters_is_noop(self):
        CacheBusBuffer(0, 4).notify_space(3)


class TestBusOp:
    def test_repr_mentions_kind(self):
        assert "READ_MISS" in repr(op())

    def test_defaults(self):
        o = op()
        assert o.supplier is None
        assert not o.cancelled
        assert not o.converted
        assert o.issued_at == -1
