"""Tests for the write-through cache mode (extension; §4.2 conjecture)."""

import pytest

from repro.consistency import SEQUENTIAL, WEAK
from repro.machine.buffers import WRITETHROUGH
from repro.machine.cache import INVALID, MODIFIED
from repro.machine.config import CacheConfig, MachineConfig
from repro.machine.system import System
from repro.sync import QueuingLockManager
from tests.conftest import make_traceset


def wt_machine(n_procs=2, **kw):
    return MachineConfig(
        n_procs=n_procs,
        cache=CacheConfig(write_policy="writethrough"),
        batch_records=1,
        **kw,
    )


def run(ts, model=SEQUENTIAL, config=None):
    config = config or wt_machine(n_procs=ts.n_procs)
    system = System(ts, config, QueuingLockManager(), model)
    return system.run(), system


class TestConfig:
    def test_policy_validated(self):
        with pytest.raises(ValueError, match="write_policy"):
            CacheConfig(write_policy="writeback2")

    def test_default_is_writeback(self):
        assert CacheConfig().write_policy == "writeback"


class TestWriteThroughSemantics:
    def test_every_write_reaches_memory(self):
        def fn(b, layout):
            sh = layout.alloc_shared(256)
            for i in range(8):
                b.write(sh + i * 16)

        result, system = run(make_traceset([fn]))
        assert system.memory.writes_serviced == 8
        assert result.bus_op_counts[WRITETHROUGH] == 8

    def test_no_allocate_on_write_miss(self):
        def fn(b, layout):
            sh = layout.alloc_shared(16)
            b.write(sh)

        result, system = run(make_traceset([fn]))
        line = None
        for l in system.caches[0].state:
            line = l
        assert line is None  # nothing installed by the write

    def test_write_hit_updates_without_dirtying(self):
        def fn(b, layout):
            sh = layout.alloc_shared(16)
            b.read(sh)  # install
            b.write(sh)  # write through

        result, system = run(make_traceset([fn]))
        (line,) = system.caches[0].resident_lines()
        assert system.caches[0].probe(line) != MODIFIED
        assert result.write_hits == 1

    def test_no_writebacks_ever(self):
        def fn(b, layout):
            base = layout.alloc_shared(8192)
            for i in range(64):  # churn the cache
                b.read(base + i * 128)
                b.write(base + i * 128)

        result, system = run(make_traceset([fn]))
        assert result.writebacks == 0

    def test_bus_write_invalidates_other_copies(self):
        addr = {}

        def p0(b, layout):
            addr["sh"] = layout.alloc_shared(16)
            b.read(addr["sh"])
            code = layout.alloc_code(16)
            b.block(1, 500, code)

        def p1(b, layout):
            code = layout.alloc_code(32)
            b.block(1, 100, code + 16)
            b.write(addr["sh"])

        result, system = run(make_traceset([p0, p1]))
        line = addr["sh"] >> 4
        assert system.caches[0].probe(line) == INVALID

    def test_sc_stalls_on_writes_wo_buffers_them(self):
        def fn(b, layout):
            sh = layout.alloc_shared(4096)
            code = layout.alloc_code(16)
            for i in range(16):
                b.write(sh + i * 64)
                b.block(1, 4, code)

        ts1 = make_traceset([fn])
        sc, _ = run(ts1)
        ts2 = make_traceset([fn])
        wo, _ = run(ts2, model=WEAK)
        assert wo.run_time < sc.run_time

    def test_accounting_identity_holds(self):
        def fn(b, layout):
            sh = layout.alloc_shared(1024)
            for i in range(20):
                b.write(sh + i * 32)
                b.read(sh + (i * 48) % 1024)

        result, _ = run(make_traceset([fn, fn]))
        for m in result.proc_metrics:
            assert m.completion_time == m.work_cycles + m.total_stall


class TestPaperConjecture:
    def test_wo_benefit_larger_under_writethrough(self):
        """§4.2: 'if the number of writes to memory increased (as in the
        case of a write-through cache), then the benefit would be
        greater'."""
        from repro.workloads import generate_trace

        ts = generate_trace("pverify", scale=0.3)

        def benefit(cache_cfg):
            cfg = MachineConfig(n_procs=ts.n_procs, cache=cache_cfg)
            sc = System(ts, cfg, QueuingLockManager(), SEQUENTIAL).run()
            wo = System(ts, cfg, QueuingLockManager(), WEAK).run()
            return (sc.run_time - wo.run_time) / sc.run_time

        wb = benefit(CacheConfig())
        wt = benefit(CacheConfig(write_policy="writethrough"))
        assert wt > wb
