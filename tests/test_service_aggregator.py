"""The streaming aggregator: durable-append-then-fold semantics,
incremental tables, and crash-tolerant resume over manifests with
truncated or corrupt trailing lines."""

import json

import pytest

from repro.runner import JobSpec, ResultCache, run_jobs
from repro.service import Scheduler, StreamAggregator

pytestmark = pytest.mark.service

GOOD = JobSpec(program="fullconn", scale=0.05)
FAULTY = JobSpec(program="does-not-exist", scale=0.05)


def _outcome_records(specs, cache=None):
    import asyncio

    sched = Scheduler(cache=cache)
    try:
        outs = asyncio.run(sched.submit_many(specs))
    finally:
        sched.close()
    return [o.manifest_record() for o in outs]


class TestFolding:
    def test_ok_record_becomes_summary_row(self):
        agg = StreamAggregator()
        for rec in _outcome_records([GOOD]):
            agg.record(rec)
        assert agg.status_counts["ok"] == 1
        row = agg.cells[("fullconn", "queuing", "sc")]
        assert row["status"] == "ok"
        assert row["run-time"] > 0
        assert 0 <= row["util %"] <= 100
        assert row["key"] == GOOD.cache_key()
        assert agg.completed_keys() == {GOOD.cache_key()}

    def test_failed_record_collected(self):
        agg = StreamAggregator()
        for rec in _outcome_records([FAULTY]):
            agg.record(rec)
        assert agg.status_counts["failed"] == 1
        assert len(agg.failures) == 1
        assert agg.failures[0]["kind"] == "error"
        assert agg.failures[0]["key"] == FAULTY.cache_key()

    def test_cached_record_keeps_existing_row(self, tmp_path):
        cache = ResultCache(tmp_path / "c")
        agg = StreamAggregator()
        for rec in _outcome_records([GOOD], cache):  # cold: ok
            agg.record(rec)
        for rec in _outcome_records([GOOD], cache):  # warm: cached
            agg.record(rec)
        row = agg.cells[("fullconn", "queuing", "sc")]
        assert row["status"] == "ok"  # the full row survives the hit
        assert agg.status_counts["cached"] == 1

    def test_table_and_summary_render(self):
        agg = StreamAggregator()
        for rec in _outcome_records([GOOD, FAULTY]):
            agg.record(rec)
        table = agg.table()
        assert "fullconn/queuing/sc" in table
        assert "run-time" in table
        # failures are listed separately, not as summary cells
        assert agg.summary() == "1 cell(s): 1 failed, 1 ok"


class TestDurability:
    def test_append_is_durable_before_fold(self, tmp_path):
        manifest = tmp_path / "m.jsonl"
        agg = StreamAggregator(manifest)
        recs = _outcome_records([GOOD])
        agg.record(recs[0])
        lines = manifest.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["key"] == GOOD.cache_key()

    def test_resume_replays_manifest(self, tmp_path):
        manifest = tmp_path / "m.jsonl"
        first = StreamAggregator(manifest)
        for rec in _outcome_records([GOOD, FAULTY]):
            first.record(rec)
        second = StreamAggregator(manifest, resume=True)
        assert second.recovered == 2
        assert second.status_counts == first.status_counts
        assert second.cells.keys() == first.cells.keys()
        assert second.completed_keys() == first.completed_keys()

    def test_resume_skips_torn_trailing_line(self, tmp_path):
        """A writer killed mid-append leaves a truncated JSON line; a
        resuming aggregator must recover every durable record and treat
        the torn cell as never-completed."""
        manifest = tmp_path / "m.jsonl"
        agg = StreamAggregator(manifest)
        for rec in _outcome_records([GOOD]):
            agg.record(rec)
        with open(manifest, "a") as fh:
            fh.write('{"key": "deadbeef", "status": "ok", "spec": {"progr')
        resumed = StreamAggregator(manifest, resume=True)
        assert resumed.recovered == 1
        assert resumed.completed_keys() == {GOOD.cache_key()}

    def test_resume_skips_corrupt_interior_garbage(self, tmp_path):
        manifest = tmp_path / "m.jsonl"
        recs = _outcome_records([GOOD, JobSpec(program="qsort", scale=0.05)])
        agg = StreamAggregator(manifest)
        agg.record(recs[0])
        with open(manifest, "a") as fh:
            fh.write("not json at all\n")
        agg.record(recs[1])
        resumed = StreamAggregator(manifest, resume=True)
        assert resumed.recovered == 2
        assert len(resumed.cells) == 2


class TestRunJobsResumeTornLines:
    """The executor's --resume path shares the aggregator's tolerance:
    truncated or corrupt trailing manifest lines must not poison a
    restarted batch."""

    def test_truncated_trailing_result_reruns_that_cell(self, tmp_path):
        manifest = tmp_path / "m.jsonl"
        specs = [GOOD, JobSpec(program="qsort", scale=0.05)]
        run_jobs(specs, manifest_path=manifest)
        lines = manifest.read_text().splitlines(keepends=True)
        assert len(lines) == 2
        # keep the first record durable, tear the second mid-write
        with open(manifest, "w") as fh:
            fh.write(lines[0])
            fh.write(lines[1][: len(lines[1]) // 2])
        batch = run_jobs(specs, manifest_path=manifest, resume=True)
        assert batch.stats.resumed == 1
        assert batch.stats.executed == 1  # the torn cell ran again
        assert [o.run_time for o in batch.outcomes]

    def test_corrupt_trailing_bytes_ignored(self, tmp_path):
        manifest = tmp_path / "m.jsonl"
        run_jobs([GOOD], manifest_path=manifest)
        with open(manifest, "ab") as fh:
            fh.write(b"\x00\xff garbage \xfe\n")
        batch = run_jobs([GOOD], manifest_path=manifest, resume=True)
        assert batch.stats.resumed == 1
        assert batch.stats.executed == 0
