"""Age-based garbage collection of the content-addressed stores
(PR 10 satellite): ``clear(older_than_days=...)`` on both caches, the
``has_key`` existence probes the store tier relies on, and the CLI
surface (``repro cache clear --older-than``, ``total_bytes`` in
``cache stats --json``)."""

import json
import os
import time

import pytest

from repro.cli import main
from repro.runner import JobSpec, ResultCache
from repro.runner.executor import _execute
from repro.runner.serialize import result_from_dict
from repro.trace.cache import TraceCache, trace_key

GOOD = JobSpec(program="fullconn", scale=0.05)
OTHER = JobSpec(program="grav", scale=0.05)

_OLD = time.time() - 10 * 86400  # ten days ago


def _age(path, when=_OLD) -> None:
    os.utime(path, (when, when))


@pytest.fixture(scope="module")
def results():
    return {
        spec: result_from_dict(_execute(spec, None, None)["result"])
        for spec in (GOOD, OTHER)
    }


class TestResultCacheGC:
    def test_clear_older_than_is_selective(self, tmp_path, results):
        cache = ResultCache(tmp_path)
        cache.put(GOOD, results[GOOD])
        cache.put(OTHER, results[OTHER])
        _age(cache.path_for(GOOD.cache_key()))
        removed = cache.clear(older_than_days=7)
        assert removed == 1
        assert cache.get_by_key(GOOD.cache_key()) is None
        assert cache.get_by_key(OTHER.cache_key()) == results[OTHER]

    def test_clear_without_cutoff_removes_everything(self, tmp_path, results):
        cache = ResultCache(tmp_path)
        cache.put(GOOD, results[GOOD])
        cache.put(OTHER, results[OTHER])
        assert cache.clear() == 2
        assert cache.count() == 0

    def test_young_objects_survive(self, tmp_path, results):
        cache = ResultCache(tmp_path)
        cache.put(GOOD, results[GOOD])
        assert cache.clear(older_than_days=7) == 0
        assert cache.has_key(GOOD.cache_key())

    def test_has_key_is_a_cheap_probe(self, tmp_path, results):
        cache = ResultCache(tmp_path)
        assert not cache.has_key(GOOD.cache_key())
        cache.put(GOOD, results[GOOD])
        hits, misses = cache.stats.hits, cache.stats.misses
        assert cache.has_key(GOOD.cache_key())
        # existence probes must not skew hit-rate accounting
        assert (cache.stats.hits, cache.stats.misses) == (hits, misses)


@pytest.fixture
def warm_trace_cache(tmp_path):
    from repro.runner.executor import _TRACE_MEMO

    _TRACE_MEMO.clear()  # force a real generation + put
    tcache = TraceCache(tmp_path / "traces")
    assert _execute(GOOD, None, str(tcache.root))["ok"]
    _TRACE_MEMO.clear()
    assert _execute(OTHER, None, str(tcache.root))["ok"]
    _TRACE_MEMO.clear()
    return tcache


class TestTraceCacheGC:
    def test_clear_older_than_removes_whole_pairs(self, warm_trace_cache):
        tcache = warm_trace_cache
        key = trace_key(GOOD.program, GOOD.scale, GOOD.seed, GOOD.n_procs)
        other_key = trace_key(OTHER.program, OTHER.scale, OTHER.seed, OTHER.n_procs)
        assert tcache.has_key(key) and tcache.has_key(other_key)
        # the sidecar's mtime governs the pair: age both files of GOOD
        _age(tcache.meta_path(key))
        _age(tcache.data_path(key))
        assert tcache.clear(older_than_days=7) == 1
        assert not tcache.has_key(key)
        assert not tcache.data_path(key).exists()  # no orphan .npy left
        assert tcache.has_key(other_key)

    def test_orphan_npy_judged_by_its_own_mtime(self, tmp_path):
        tcache = TraceCache(tmp_path / "traces")
        orphan = tcache.data_path("f" * 64)
        orphan.parent.mkdir(parents=True, exist_ok=True)
        orphan.write_bytes(b"\x00" * 16)
        _age(orphan)
        assert tcache.clear(older_than_days=7) == 0  # no sidecar removed
        assert not orphan.exists()

    def test_get_put_bytes_round_trip(self, warm_trace_cache, tmp_path):
        src = warm_trace_cache
        key = trace_key(GOOD.program, GOOD.scale, GOOD.seed, GOOD.n_procs)
        pair = src.get_bytes(key)
        assert pair is not None
        meta_bytes, data_bytes = pair
        dst = TraceCache(tmp_path / "replica")
        dst.put_bytes(key, meta_bytes, data_bytes)
        assert dst.get_bytes(key) == pair
        # the replicated object is loadable as a real traceset
        assert dst.get(GOOD.program, GOOD.scale, GOOD.seed, GOOD.n_procs) is not None

    def test_put_bytes_rejects_a_mismatched_key(self, warm_trace_cache, tmp_path):
        src = warm_trace_cache
        key = trace_key(GOOD.program, GOOD.scale, GOOD.seed, GOOD.n_procs)
        meta_bytes, data_bytes = src.get_bytes(key)
        dst = TraceCache(tmp_path / "replica")
        with pytest.raises(ValueError):
            dst.put_bytes("0" * 64, meta_bytes, data_bytes)
        assert not dst.has_key("0" * 64)


class TestCacheCLI:
    def test_clear_older_than_flag(self, tmp_path, results, capsys):
        cache = ResultCache(tmp_path / "cache")
        cache.put(GOOD, results[GOOD])
        cache.put(OTHER, results[OTHER])
        _age(cache.path_for(GOOD.cache_key()))
        rc = main(
            [
                "cache",
                "clear",
                "--older-than",
                "7",
                "--cache-dir",
                str(tmp_path / "cache"),
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "removed 1 result(s) older than 7 day(s)" in out
        assert cache.has_key(OTHER.cache_key())

    def test_stats_json_reports_total_bytes(self, tmp_path, results, capsys):
        cache = ResultCache(tmp_path / "cache")
        cache.put(GOOD, results[GOOD])
        rc = main(["cache", "stats", "--json", "--cache-dir", str(tmp_path / "cache")])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["total_bytes"] == (
            payload["result_cache"]["size_bytes"]
            + payload["trace_cache"]["size_bytes"]
        )
        assert payload["total_bytes"] > 0
