"""Tests for contention rows, the §3.2 decomposition and the predictor
study."""

import pytest

from repro.core.contention import contention_row
from repro.core.decomposition import decompose_ttas_slowdown
from repro.core.predictors import predictor_study, spearman
from repro.machine.metrics import RunResult
from repro.sync.stats import LockStats


def fake_lock_stats(**kw):
    base = dict(
        acquisitions=100,
        hold_cycles_total=20000,
        transfers=40,
        waiters_at_transfer_total=120,
        transfer_hold_cycles_total=12000,
        handoff_cycles_total=200,
        uncontended_acquire_cycles_total=360,
        uncontended_acquires=60,
    )
    base.update(kw)
    return LockStats(**base)


def fake_result(program="x", run_time=100000, lock_stats=None, n_procs=10, **kw):
    from repro.machine.metrics import ProcMetrics

    pm = []
    for p in range(n_procs):
        m = ProcMetrics(p)
        m.work_cycles = run_time // 2
        m.stall_miss = kw.pop("_stall_miss", run_time // 4)
        m.stall_lock = kw.pop("_stall_lock", run_time // 4)
        m.completion_time = run_time
        pm.append(m)
    defaults = dict(
        program=program,
        n_procs=n_procs,
        lock_scheme="queuing",
        consistency="sc",
        run_time=run_time,
        proc_metrics=tuple(pm),
        lock_stats=lock_stats or fake_lock_stats(),
        bus_busy_cycles=run_time // 5,
        bus_op_counts={},
        read_hits=900,
        read_misses=100,
        write_hits=95,
        write_misses=5,
        ifetch_hits=1000,
        ifetch_misses=10,
        writebacks=3,
        c2c_supplied=7,
        invalidations_received=11,
        buffer_max_occupancy=2,
    )
    defaults.update(kw)
    return RunResult(**defaults)


class TestContentionRow:
    def test_row_fields(self):
        row = contention_row(fake_result())
        assert row.time_held == pytest.approx(200.0)
        assert row.transfers == 40
        assert row.waiters_at_transfer == pytest.approx(3.0)
        assert row.transfer_time_held == pytest.approx(300.0)
        assert row.handoff_cycles == pytest.approx(5.0)
        assert row.contended_fraction == pytest.approx(0.4)

    def test_zero_division_safety(self):
        row = contention_row(
            fake_result(lock_stats=fake_lock_stats(acquisitions=0, transfers=0))
        )
        assert row.time_held == 0
        assert row.waiters_at_transfer == 0
        assert row.contended_fraction == 0


class TestDecomposition:
    def test_factor_arithmetic(self):
        q = fake_result(
            run_time=100000,
            lock_stats=fake_lock_stats(handoff_cycles_total=40 * 3),
        )
        t = fake_result(
            run_time=108000,
            lock_stats=fake_lock_stats(
                handoff_cycles_total=40 * 23, transfer_hold_cycles_total=12400
            ),
        )
        d = decompose_ttas_slowdown(q, t)
        assert d.slowdown_cycles == 8000
        assert d.slowdown_pct == pytest.approx(8.0)
        # paper accounting: delta-handoff x transfers
        assert d.handoff_cycles == pytest.approx((23 - 3) * 40)
        # delta transfer-hold = 310 - 300 = 10 cycles x 40 transfers
        assert d.hold_cycles == pytest.approx(10 * 40)
        assert d.residual_cycles == pytest.approx(8000 - 800 - 400)
        assert d.handoff_pct + d.hold_pct + d.residual_pct == pytest.approx(100.0)
        assert 0 < d.handoff_share < 1
        assert d.handoff_ratio == pytest.approx(23 / 3)

    def test_program_mismatch_rejected(self):
        with pytest.raises(ValueError, match="same program"):
            decompose_ttas_slowdown(fake_result("a"), fake_result("b"))

    def test_real_grav_decomposition_shape(self):
        """On the real workload: T&T&S is measurably slower, its
        hand-off is several times the queuing hand-off, the hand-off
        factor alone covers a large part of the increase, and bus
        utilization grows substantially (§3.2)."""
        from repro.core.experiment import run_suite

        suite = run_suite(
            programs=["grav"],
            scale=0.5,
            configs=(("queuing", "sc"), ("ttas", "sc")),
        )
        d = decompose_ttas_slowdown(suite.queuing_sc["grav"], suite.ttas_sc["grav"])
        assert d.slowdown_pct > 1.0
        assert d.handoff_ratio > 3
        assert d.handoff_pct > 40
        assert d.bus_util_growth > 0.25


class TestSpearman:
    def test_perfect_positive(self):
        assert spearman([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)

    def test_perfect_negative(self):
        assert spearman([1, 2, 3], [9, 5, 1]) == pytest.approx(-1.0)

    def test_monotone_nonlinear_still_perfect(self):
        assert spearman([1, 2, 3, 4], [1, 8, 27, 1000]) == pytest.approx(1.0)

    def test_matches_scipy(self):
        from scipy.stats import spearmanr

        x = [3.0, 1.0, 4.0, 1.5, 5.0, 9.0]
        y = [2.0, 7.0, 1.0, 8.0, 2.5, 0.5]
        assert spearman(x, y) == pytest.approx(spearmanr(x, y).statistic)

    def test_ties_handled(self):
        from scipy.stats import spearmanr

        x = [1.0, 1.0, 2.0, 3.0]
        y = [4.0, 5.0, 6.0, 7.0]
        assert spearman(x, y) == pytest.approx(spearmanr(x, y).statistic)

    def test_constant_input_gives_zero(self):
        assert spearman([1, 1, 1], [1, 2, 3]) == 0.0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            spearman([1, 2], [1, 2, 3])


class TestPredictorStudy:
    def test_real_suite_confirms_paper_conclusion(self):
        """§5: acquisitions predict contention; % time held does not."""
        from repro.core.experiment import run_suite
        from repro.core.ideal import ideal_stats

        programs = ["grav", "pdsa", "fullconn", "pverify", "qsort"]
        suite = run_suite(programs=programs, scale=0.5, configs=(("queuing", "sc"),))
        ideals = [ideal_stats(suite.traces[p]) for p in programs]
        results = [suite.queuing_sc[p] for p in programs]
        study = predictor_study(ideals, results)
        assert study.best_predictor == "lock_pairs"
        assert study.corr_lock_pairs > 0.55  # paper's own data gives 0.6
        assert study.corr_pct_time_held < study.corr_lock_pairs - 0.2
        assert "lock" in study.conclusion()

    def test_mismatched_lists_rejected(self):
        from repro.core.ideal import BenchmarkIdeal

        ideal = BenchmarkIdeal("a", 1, 1, 1, 1, 1, 1, 0, 0, 0, ())
        with pytest.raises(ValueError):
            predictor_study([ideal], [])
