"""Tests for the TSO consistency model (extension)."""

import pytest

from repro.consistency import SEQUENTIAL, TSO, WEAK, get_model
from repro.machine.system import System
from repro.sync import QueuingLockManager
from tests.conftest import make_traceset, tiny_machine


def run(fn, model, n=1):
    ts = make_traceset([fn] * n)
    return System(ts, tiny_machine(n_procs=n), QueuingLockManager(), model).run()


class TestPolicy:
    def test_flags(self):
        assert not TSO.stall_on_write_miss
        assert not TSO.stall_on_upgrade
        assert TSO.bypass_reads
        assert not TSO.drain_at_sync

    def test_registry_aliases(self):
        assert get_model("tso") is TSO
        assert get_model("pc") is TSO


class TestBehaviour:
    def test_never_drains(self):
        def fn(b, layout):
            sh = layout.alloc_shared(64)
            la = layout.alloc_lock()
            b.write(sh)
            b.lock(0, la)
            b.unlock(0, la)

        r = run(fn, TSO)
        assert r.proc_metrics[0].drains == 0
        assert r.proc_metrics[0].stall_drain == 0

    def test_buffers_stores_like_wo(self):
        def fn(b, layout):
            sh = layout.alloc_shared(65536)
            code = layout.alloc_code(16)
            for i in range(16):
                b.write(sh + i * 64)
                b.block(1, 4, code)

        sc = run(fn, SEQUENTIAL)
        tso = run(fn, TSO)
        assert tso.run_time < sc.run_time

    def test_between_sc_and_wo_on_sync_heavy_trace(self):
        """TSO skips WO's drains, so on a sync-heavy write-heavy trace
        TSO's run-time is <= WO's plus a small bound, and <= SC's."""

        def fn(b, layout):
            sh = layout.alloc_shared(65536)
            la = layout.alloc_lock()
            code = layout.alloc_code(16)
            for i in range(10):
                b.write(sh + i * 4096)
                b.lock(0, la)
                b.block(1, 10, code)
                b.unlock(0, la)

        sc = run(fn, SEQUENTIAL)
        tso = run(fn, TSO)
        wo = run(fn, WEAK)
        assert tso.run_time <= sc.run_time
        assert tso.run_time <= wo.run_time + 20

    def test_accounting_identity(self):
        state = {}

        def fn(b, layout):
            if "la" not in state:
                state["la"] = layout.alloc_lock()
            sh = layout.alloc_shared(4096)
            for i in range(8):
                b.write(sh + i * 128)
                b.read(sh + ((i * 7) % 32) * 128)
            b.lock(0, state["la"])
            b.unlock(0, state["la"])

        r = run(fn, TSO, n=2)
        for m in r.proc_metrics:
            assert m.completion_time == m.work_cycles + m.total_stall

    def test_mutual_exclusion_preserved(self):
        """FIFO store buffering must not break lock semantics."""
        from tests.test_locks_in_system import IntervalRecorder, contended_traceset

        ts = contended_traceset(n_procs=4, css=5)
        mgr = QueuingLockManager()
        rec = IntervalRecorder(mgr)
        System(ts, tiny_machine(n_procs=4), mgr, TSO).run()
        rec.assert_mutual_exclusion()

    def test_suite_results_close_to_wo(self):
        """§4.2 implies drains are nearly free, so TSO ~ WO on the real
        workloads (the extension's headline)."""
        from repro.machine.system import simulate
        from repro.workloads import generate_trace

        ts = generate_trace("pverify", scale=0.3)
        wo = simulate(ts, model=WEAK)
        tso = simulate(ts, model=TSO)
        assert abs(tso.run_time - wo.run_time) / wo.run_time < 0.005
