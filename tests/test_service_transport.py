"""Transports and the worker agent: in-process dispatch, the
newline-delimited JSON socket, reconnect semantics, and the four
worker operations (ping / run / run_shard / stats)."""

import asyncio
import json

import pytest

from repro.core.experiment import run_experiment
from repro.runner import JobSpec, ResultCache
from repro.service import (
    InProcessTransport,
    Scheduler,
    SocketTransport,
    WorkerAgent,
    serve_socket,
    serve_worker,
)

pytestmark = pytest.mark.service

GOOD = JobSpec(program="fullconn", scale=0.05)
FAULTY = JobSpec(program="does-not-exist", scale=0.05)


class TestInProcessTransport:
    def test_round_trips_through_json(self):
        async def handler(request):
            # tuples only survive if the transport JSON-normalizes both
            # directions, like the socket does
            assert isinstance(request["values"], list)
            return {"ok": True, "echo": request["values"], "pair": (1, 2)}

        async def scenario():
            t = InProcessTransport(handler)
            return await t.call({"op": "echo", "values": (3, 4)})

        response = asyncio.run(scenario())
        assert response == {"ok": True, "echo": [3, 4], "pair": [1, 2]}


class TestSocketTransport:
    def test_ping_over_localhost(self):
        async def scenario():
            server, port, agent = await serve_worker(name="w0")
            transport = SocketTransport("127.0.0.1", port)
            try:
                return await transport.call({"op": "ping"})
            finally:
                await transport.close()
                server.close()
                await server.wait_closed()
                agent.close()

        response = asyncio.run(scenario())
        assert response == {"ok": True, "op": "pong", "worker": "w0", "jobs": 1}

    def test_from_address_forms(self):
        t = SocketTransport.from_address("10.0.0.7:8700")
        assert (t.host, t.port) == ("10.0.0.7", 8700)
        t = SocketTransport.from_address(":8700")
        assert (t.host, t.port) == ("127.0.0.1", 8700)

    def test_reconnects_once_after_server_restart(self):
        async def handler(request):
            return {"ok": True, "echo": request["n"]}

        async def scenario():
            server, port = await serve_socket(handler)
            transport = SocketTransport("127.0.0.1", port)
            first = await transport.call({"n": 1})
            # bounce the server on the same port: the established
            # connection goes stale but the address stays valid
            server.close()
            await server.wait_closed()
            server, port2 = await serve_socket(handler, port=port)
            assert port2 == port
            second = await transport.call({"n": 2})
            await transport.close()
            server.close()
            await server.wait_closed()
            return first, second

        first, second = asyncio.run(scenario())
        assert first == {"ok": True, "echo": 1}
        assert second == {"ok": True, "echo": 2}

    def test_malformed_frame_reported_not_fatal(self):
        async def handler(request):  # pragma: no cover - never reached
            return {"ok": True}

        async def scenario():
            server, port = await serve_socket(handler)
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(b"this is not json\n")
            await writer.drain()
            line = await reader.readline()
            writer.close()
            await writer.wait_closed()
            server.close()
            await server.wait_closed()
            return json.loads(line)

        response = asyncio.run(scenario())
        assert response["ok"] is False


class TestWorkerAgent:
    def test_run_executes_and_caches(self, tmp_path):
        agent = WorkerAgent(cache=ResultCache(tmp_path / "c"))

        async def scenario():
            first = await agent.handle(
                {"op": "run", "spec": GOOD.to_dict(), "timeout": None}
            )
            second = await agent.handle(
                {"op": "run", "spec": GOOD.to_dict(), "timeout": None}
            )
            return first, second

        try:
            first, second = asyncio.run(scenario())
        finally:
            agent.close()
        assert first["ok"] and "cached" not in first
        assert second["ok"] and second["cached"] is True
        assert second["result"] == first["result"]

    def test_run_reports_failure_payload(self):
        agent = WorkerAgent()
        try:
            payload = asyncio.run(
                agent.handle({"op": "run", "spec": FAULTY.to_dict(), "timeout": None})
            )
        finally:
            agent.close()
        assert payload["ok"] is False
        assert payload["kind"] == "error"
        assert payload["message"]

    def test_run_shard_returns_ordered_payloads(self, tmp_path):
        agent = WorkerAgent(cache=ResultCache(tmp_path / "c"))
        specs = [GOOD, FAULTY, JobSpec(program="qsort", scale=0.05)]
        try:
            response = asyncio.run(
                agent.handle(
                    {"op": "run_shard", "specs": [s.to_dict() for s in specs]}
                )
            )
        finally:
            agent.close()
        assert response["ok"] is True
        assert [p["ok"] for p in response["payloads"]] == [True, False, True]
        assert response["stats"]["executed"] == 2
        assert response["stats"]["failed"] == 1

    def test_stats_and_unknown_op(self, tmp_path):
        agent = WorkerAgent(cache=ResultCache(tmp_path / "c"), name="w1")
        stats = asyncio.run(agent.handle({"op": "stats"}))
        assert stats["ok"] and stats["worker"] == "w1"
        assert stats["cache"]["count"] == 0
        bad = asyncio.run(agent.handle({"op": "nope"}))
        assert bad["ok"] is False and "unknown op" in bad["message"]


class TestSchedulerOverTransports:
    def test_remote_grid_matches_local_results(self, tmp_path):
        """A sharded remote sweep returns the same results the local
        simulator produces, and populates the front cache."""
        specs = [GOOD, JobSpec(program="qsort", scale=0.05)]

        async def scenario():
            server, port, agent = await serve_worker(
                cache=ResultCache(tmp_path / "worker")
            )
            transport = SocketTransport("127.0.0.1", port)
            sched = Scheduler(
                cache=ResultCache(tmp_path / "front"), transports=[transport]
            )
            try:
                outs = await sched.submit_grid(specs)
            finally:
                await transport.close()
                server.close()
                await server.wait_closed()
                agent.close()
                sched.close()
            return sched, outs

        sched, outs = asyncio.run(scenario())
        assert [o.status for o in outs] == ["ok", "ok"]
        assert sched.metrics.shards_dispatched >= 1
        for spec, out in zip(specs, outs):
            local = run_experiment(spec.program, scale=0.05)
            assert out.outcome.run_time == local.run_time
        # executed results were folded into the front-end store
        assert sched.cache.stats.puts == 2
