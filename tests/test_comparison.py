"""Tests for the fidelity-comparison engine."""

import pytest

from repro.core.comparison import (
    SCALE_FACTOR,
    CellCheck,
    compare_contention_table,
    compare_runtime_table,
    compare_weak_ordering_table,
    fidelity_checks,
    render_fidelity_report,
)
from tests.test_core_analysis import fake_lock_stats, fake_result


class TestCellCheck:
    def test_row_rendering(self):
        c = CellCheck(3, "grav", "utilization %", 32.6, 33.5, "+-10", True)
        row = c.row()
        assert row[0] == "T3"
        assert row[-1] == "ok"
        c2 = CellCheck(3, "grav", "m", 1, 99, "+-10", False)
        assert c2.row()[-1] == "DEVIATES"


class TestRuntimeComparison:
    def test_within_band(self):
        r = fake_result("grav", n_procs=1, _stall_miss=32, _stall_lock=968)
        # fake_result: util = work/completion = 0.5 -> 50% vs paper 32.6
        checks = compare_runtime_table({"grav": r}, 3)
        by = {c.metric: c for c in checks}
        assert not by["utilization %"].ok  # 50 vs 32.6 exceeds +-10
        # lock stall: 96.8% vs paper 96.5 -> ok
        assert by["lock stall %"].ok

    def test_missing_programs_skipped(self):
        checks = compare_runtime_table({}, 3)
        assert checks == []


class TestContentionComparison:
    def test_scaled_transfer_counts(self):
        ls = fake_lock_stats(transfers=1436, waiters_at_transfer_total=int(5.2 * 1436))
        r = fake_result("grav", lock_stats=ls)
        checks = compare_contention_table({"grav": r}, 4)
        by = {c.metric: c for c in checks}
        # 1436 * 20 = 28720 vs paper 28725 -> within x3
        assert by["transfers (scaled)"].ok
        assert by["transfers (scaled)"].ours == pytest.approx(1436 * SCALE_FACTOR)

    def test_ratio_check_zero_handling(self):
        ls = fake_lock_stats(transfers=0, waiters_at_transfer_total=0,
                             transfer_hold_cycles_total=0)
        r = fake_result("pverify", lock_stats=ls)
        checks = compare_contention_table({"pverify": r}, 4)
        by = {c.metric: c for c in checks}
        # paper pverify transfers = 28; ours 0 -> ratio check fails honestly
        assert not by["transfers (scaled)"].ok


class TestWeakOrderingComparison:
    def test_difference_band(self):
        sc = {"qsort": fake_result("qsort", run_time=100000)}
        wo = {"qsort": fake_result("qsort", run_time=99980)}
        checks = compare_weak_ordering_table(sc, wo)
        by = {c.metric: c for c in checks}
        assert by["WO difference %"].ok  # 0.02% vs paper 0.02%

    def test_large_difference_flagged(self):
        sc = {"qsort": fake_result("qsort", run_time=100000)}
        wo = {"qsort": fake_result("qsort", run_time=90000)}
        checks = compare_weak_ordering_table(sc, wo)
        by = {c.metric: c for c in checks}
        assert not by["WO difference %"].ok


class TestReport:
    def test_report_counts_and_lists_deviations(self):
        checks = [
            CellCheck(3, "a", "m1", 1, 1, "+-1", True),
            CellCheck(4, "b", "m2", 10, 99, "x2", False),
        ]
        text = render_fidelity_report(checks)
        assert "1/2" in text
        assert "Deviations" in text
        assert "T4 b m2" in text

    def test_all_ok_report_has_no_deviation_tail(self):
        checks = [CellCheck(3, "a", "m", 1, 1, "+-1", True)]
        text = render_fidelity_report(checks)
        assert "Deviations" not in text

    def test_fidelity_checks_smoke(self):
        """End-to-end on a tiny suite: produces checks for every table."""
        from repro.core.experiment import run_suite

        suite = run_suite(programs=["fullconn"], scale=0.05)
        checks = fidelity_checks(suite)
        tables = {c.table for c in checks}
        assert tables == {1, 2, 3, 4, 5, 6, 7, 8}


class TestIdealComparison:
    def test_calibrated_workload_passes_table1(self):
        from repro.core.comparison import compare_ideal_tables
        from repro.core.ideal import ideal_stats
        from repro.workloads import generate_trace

        ideals = {"pverify": ideal_stats(generate_trace("pverify", scale=1.0))}
        checks = compare_ideal_tables(ideals)
        by = {(c.table, c.metric): c for c in checks}
        assert by[(1, "processors")].ok
        assert by[(1, "work cycles (scaled)")].ok
        assert by[(2, "avg held (cycles)")].ok
        assert by[(2, "% time held")].ok

    def test_topopt_na_hold_skipped(self):
        from repro.core.comparison import compare_ideal_tables
        from repro.core.ideal import ideal_stats
        from repro.workloads import generate_trace

        ideals = {"topopt": ideal_stats(generate_trace("topopt", scale=0.1))}
        checks = compare_ideal_tables(ideals)
        metrics = {c.metric for c in checks if c.table == 2}
        assert "avg held (cycles)" not in metrics  # paper says N/A
