"""Unit tests for the ideal trace statistics (Tables 1/2 groundwork)."""

import pytest

from repro.trace.builder import TraceBuilder
from repro.trace.layout import AddressLayout
from repro.trace.stats import compute_trace_stats, lock_holds


@pytest.fixture
def layout():
    return AddressLayout(2)


def build(layout, fn):
    b = TraceBuilder(0, layout)
    fn(b)
    return b.finish()


class TestReferenceCounts:
    def test_work_cycles_sum_blocks(self, layout):
        code = layout.alloc_code(256)

        def fn(b):
            b.block(5, 12, code)
            b.block(3, 8, code)

        s = compute_trace_stats(build(layout, fn))
        assert s.work_cycles == 20
        assert s.all_refs == 8  # ifetches only
        assert s.data_refs == 0

    def test_data_and_shared_split(self, layout):
        code = layout.alloc_code(64)
        sh = layout.alloc_shared(64)
        pr = layout.alloc_private(0, 64)

        def fn(b):
            b.block(2, 4, code)
            b.read(sh)
            b.read(pr)
            b.write(sh, reps=3)

        s = compute_trace_stats(build(layout, fn))
        assert s.all_refs == 2 + 1 + 1 + 3
        assert s.data_refs == 5
        assert s.shared_refs == 4  # 1 shared read + 3 shared writes

    def test_lock_word_refs_count_as_shared(self, layout):
        la = layout.alloc_lock()

        def fn(b):
            b.read(la)

        s = compute_trace_stats(build(layout, fn))
        assert s.shared_refs == 1

    def test_reps_count_every_elementary_ref(self, layout):
        sh = layout.alloc_shared(256)

        def fn(b):
            b.read(sh, reps=17)

        s = compute_trace_stats(build(layout, fn))
        assert s.data_refs == 17


class TestLockHolds:
    def test_simple_hold_duration(self, layout):
        code = layout.alloc_code(64)
        la = layout.alloc_lock()

        def fn(b):
            b.lock(1, la)
            b.block(4, 100, code)
            b.unlock(1, la)

        holds = lock_holds(build(layout, fn))
        assert len(holds) == 1
        assert holds[0].duration == 100
        assert not holds[0].nested

    def test_nested_flag(self, layout):
        code = layout.alloc_code(64)
        l1, l2 = layout.alloc_lock(), layout.alloc_lock()

        def fn(b):
            b.lock(1, l1)
            b.block(2, 10, code)
            b.lock(2, l2)
            b.block(2, 10, code)
            b.unlock(2, l2)
            b.unlock(1, l1)

        holds = lock_holds(build(layout, fn))
        nested = {h.lock_id: h.nested for h in holds}
        assert nested == {1: False, 2: True}

    def test_stats_counts_pairs_and_nesting(self, layout):
        code = layout.alloc_code(64)
        l1, l2 = layout.alloc_lock(), layout.alloc_lock()

        def fn(b):
            for _ in range(3):
                b.lock(1, l1)
                b.lock(2, l2)
                b.block(2, 10, code)
                b.unlock(2, l2)
                b.unlock(1, l1)

        s = compute_trace_stats(build(layout, fn))
        assert s.lock_pairs == 6
        assert s.nested_locks == 3

    def test_total_held_merges_overlapping_intervals(self, layout):
        """Nested holds must not double-count: Table 2's "Total Held"
        is the union of held intervals."""
        code = layout.alloc_code(64)
        l1, l2 = layout.alloc_lock(), layout.alloc_lock()

        def fn(b):
            b.lock(1, l1)
            b.block(2, 50, code)
            b.lock(2, l2)  # inner hold entirely within outer
            b.block(2, 30, code)
            b.unlock(2, l2)
            b.block(2, 20, code)
            b.unlock(1, l1)
            b.block(2, 100, code)  # unlocked tail

        s = compute_trace_stats(build(layout, fn))
        assert s.total_held == 100  # 50+30+20, inner not double-counted
        assert s.work_cycles == 200
        assert s.pct_time_held == pytest.approx(50.0)

    def test_avg_held_is_per_pair(self, layout):
        code = layout.alloc_code(64)
        la = layout.alloc_lock()

        def fn(b):
            b.lock(1, la)
            b.block(2, 10, code)
            b.unlock(1, la)
            b.lock(1, la)
            b.block(2, 30, code)
            b.unlock(1, la)

        s = compute_trace_stats(build(layout, fn))
        assert s.avg_held == pytest.approx(20.0)

    def test_no_locks(self, layout):
        code = layout.alloc_code(64)

        def fn(b):
            b.block(2, 10, code)

        s = compute_trace_stats(build(layout, fn))
        assert s.lock_pairs == 0
        assert s.avg_held == 0.0
        assert s.pct_time_held == 0.0

    def test_empty_trace(self, layout):
        s = compute_trace_stats(build(layout, lambda b: None))
        assert s.work_cycles == 0
        assert s.all_refs == 0
        assert s.pct_time_held == 0.0
