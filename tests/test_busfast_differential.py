"""Differential acceptance for the contended-path (bus) fast path.

The bus fast path -- O(1) bitmask arbitration, fused
grant->fire->release chaining, inline event scheduling, the fast engine
dispatch loop and the fused completion executors -- must be a pure
*speed* change: with ``MachineConfig.bus_fast_path`` off, the simulator
byte-for-byte restores the committed-baseline behaviour, and the two
modes must serialize identically.  ``tests/test_differential.py``
enforces this at full scale with *both* fast paths varied together;
this file isolates the bus knob (``vary=("bus_fast_path",)``) on the
two most bus-bound programs at reduced scale, so a divergence in the
contended path cannot hide behind the interpreter fast path.

The audit cell additionally proves the bus fast path invariant-clean:
the runtime auditor (busproto + accounting checkers) rides the fast
run in collect mode and must report zero violations while the unaudited
reference run still serializes identically.
"""

import pytest

from repro.machine.engine import HeapEngine
from repro.testing import LOCK_SCHEMES, MODELS, differential_check, run_cell
from repro.workloads import generate_trace

#: the two most bus-transaction-dense suite programs (see
#: docs/performance.md): their cells spend the largest share of wall
#: time in the arbitration/transaction cascade this fast path collapses
BUS_HEAVY = ("qsort", "pdsa")
SCALE = 0.25


@pytest.mark.parametrize("program", BUS_HEAVY)
def test_bus_fast_path_byte_identical(program):
    reports = differential_check(
        programs=(program,),
        scale=SCALE,
        seed=1991,
        vary=("bus_fast_path",),
    )
    assert len(reports) == len(LOCK_SCHEMES) * len(MODELS)
    bad = [r for r in reports if not r.equal]
    if bad:
        detail = "\n".join(f"{r.label}:\n  " + "\n  ".join(r.diffs) for r in bad)
        pytest.fail(
            f"bus fast path diverged on {len(bad)} cell(s):\n{detail}",
            pytrace=False,
        )


def test_bus_fast_path_audit_clean():
    """The auditor rides the bus-fast run and must stay silent."""
    ts = generate_trace("qsort", scale=SCALE, seed=1991)
    report = run_cell(
        ts,
        lock_scheme="queuing",
        consistency="sc",
        audit=True,
        vary=("bus_fast_path",),
    )
    assert report.equal, "\n".join(report.diffs)
    assert report.violations == 0
    assert report.audit_checks > 0  # anti-vacuity: the checkers ran


def test_bus_fast_path_under_heap_engine():
    """With HeapEngine the inline-scheduling and fast-dispatch arms are
    ineligible and every guard must fall back to the reference
    scheduling calls -- the cell still has to agree byte-for-byte."""
    ts = generate_trace("pdsa", scale=SCALE, seed=1991)
    report = run_cell(
        ts,
        lock_scheme="ttas",
        consistency="wo",
        engine_factory=HeapEngine,
        vary=("bus_fast_path",),
    )
    assert report.equal, "\n".join(report.diffs)
