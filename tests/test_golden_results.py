"""Golden-result regression fixtures.

Each ``tests/golden/<program>.json`` pins the complete serialized
:class:`~repro.machine.metrics.RunResult` of one suite cell at scale
0.25.  The six suite fixtures between them cover every program, the
paper's two lock schemes and both consistency models, so any change
that alters simulated numbers anywhere in the machine fails here with a
readable per-field diff -- event-order-preserving refactors (the only
kind the optimization work is allowed to make) pass untouched.  A
full-scale fixture (``topopt@1.json``) pins the cell with the strongest
segment-kernel engagement, so the kernel's collapse/retire arithmetic
is regression-pinned at real size, not just checked differentially; two
lock-zoo fixtures (``qsort+mcs.json``, ``qsort+backoff.json``) pin the
extension schemes' timing numerically.

To regenerate after an *intentional* behaviour change::

    PYTHONPATH=src python -m pytest tests/test_golden_results.py --regen-golden

then review the fixture diff like any other code change.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.consistency import get_model
from repro.machine.system import simulate
from repro.runner.serialize import result_to_dict
from repro.sync import get_lock_manager
from repro.testing import dict_diff
from repro.workloads import generate_trace

GOLDEN_DIR = Path(__file__).parent / "golden"


@pytest.fixture(autouse=True)
def _audited(audit_everything):
    """Golden runs double as audit runs: the auditor is observation-only
    (pinned by test_audit_grid), so the fixtures still match while every
    cell is also checked for invariant violations."""
    yield

#: the pinned grid: every program once, the paper's two schemes and both
#: models covered, plus one full-scale point (topopt/queuing/sc: the
#: cell where the segment kernel collapses the most machine-quiet
#: segments) and two lock-zoo cells on the most lock-bound program
#: (qsort under a queue-based and a spin-based extension scheme), so the
#: extension managers' grant/hand-off arithmetic is pinned numerically,
#: not just checked differentially
GOLDEN_CELLS = [
    ("grav", "queuing", "sc", 0.25),
    ("pdsa", "ttas", "sc", 0.25),
    ("fullconn", "queuing", "wo", 0.25),
    ("pverify", "ttas", "wo", 0.25),
    ("qsort", "queuing", "sc", 0.25),
    ("topopt", "ttas", "wo", 0.25),
    ("topopt", "queuing", "sc", 1.0),
    ("qsort", "mcs", "sc", 0.25),
    ("qsort", "backoff", "sc", 0.25),
]
GOLDEN_SCALE = 0.25
GOLDEN_SEED = 1991

#: the paper's schemes keep their original unqualified fixture names;
#: lock-zoo cells are scheme-qualified
_PAPER_SCHEMES = ("queuing", "ttas")


def _fixture_name(program: str, scale: float, locks: str) -> str:
    stem = program if locks in _PAPER_SCHEMES else f"{program}+{locks}"
    if scale == GOLDEN_SCALE:
        return f"{stem}.json"
    return f"{stem}@{scale:g}.json"


def run_cell(program: str, locks: str, model: str, scale: float = GOLDEN_SCALE) -> dict:
    ts = generate_trace(program, scale=scale, seed=GOLDEN_SEED)
    result = simulate(
        ts, lock_manager=get_lock_manager(locks), model=get_model(model)
    )
    # a JSON round-trip so comparisons see exactly what the file stores
    return json.loads(json.dumps(result_to_dict(result), sort_keys=True))


@pytest.mark.parametrize("program,locks,model,scale", GOLDEN_CELLS)
def test_golden_result(request, program, locks, model, scale):
    path = GOLDEN_DIR / _fixture_name(program, scale, locks)
    got = run_cell(program, locks, model, scale)
    spec = {
        "program": program,
        "scale": scale,
        "seed": GOLDEN_SEED,
        "locks": locks,
        "model": model,
    }

    if request.config.getoption("--regen-golden"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        with open(path, "w") as fh:
            json.dump({"spec": spec, "result": got}, fh, indent=1, sort_keys=True)
            fh.write("\n")
        pytest.skip(f"regenerated {path.name}")

    assert path.exists(), (
        f"missing fixture {path}; generate it with --regen-golden"
    )
    with open(path) as fh:
        fixture = json.load(fh)
    assert fixture["spec"] == spec, (
        f"{path.name} was generated for {fixture['spec']}, the test now "
        f"runs {spec}; regenerate with --regen-golden"
    )
    expected = fixture["result"]
    if got != expected:
        diff = "\n  ".join(dict_diff(expected, got))
        pytest.fail(
            f"{program}/{locks}/{model} diverged from {path.name}:\n  {diff}\n"
            "If this change is intentional, regenerate the fixtures with "
            "--regen-golden and commit the diff.",
            pytrace=False,
        )
