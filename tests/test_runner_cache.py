"""Correctness of the content-addressed result cache and of the cache
key itself: a hit must equal a fresh simulation, and every field of the
job spec must contribute to the key."""

import json
from dataclasses import replace

import pytest

from repro.machine.config import CacheConfig, MachineConfig, MemoryConfig
from repro.runner import CACHE_FORMAT, JobSpec, ResultCache, traceset_digest
from repro.workloads import generate_trace

SPEC = JobSpec(program="fullconn", scale=0.05, seed=1991)


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


class TestCacheHitEqualsFresh:
    def test_hit_equals_fresh_simulation(self, cache):
        fresh = SPEC.run()
        cache.put(SPEC, fresh)
        hit = cache.get(SPEC)
        assert hit is not None
        assert hit == fresh
        assert hit == SPEC.run()  # deterministic: also equals a re-run

    def test_stats_accounting(self, cache):
        assert cache.get(SPEC) is None
        cache.put(SPEC, SPEC.run())
        assert cache.get(SPEC) is not None
        assert (cache.stats.misses, cache.stats.puts, cache.stats.hits) == (1, 1, 1)

    def test_contains_and_count(self, cache):
        assert SPEC not in cache
        cache.put(SPEC, SPEC.run())
        assert SPEC in cache
        assert cache.count() == 1
        assert cache.size_bytes() > 0

    def test_clear(self, cache):
        cache.put(SPEC, SPEC.run())
        assert cache.clear() == 1
        assert cache.count() == 0
        assert cache.get(SPEC) is None


class TestCacheKeySensitivity:
    """Changing any JobSpec field must change the cache key."""

    BASE = JobSpec(
        program="fullconn",
        scale=0.05,
        seed=1991,
        lock_scheme="queuing",
        consistency="sc",
        machine=MachineConfig(n_procs=4),
    )

    @pytest.mark.parametrize(
        "change",
        [
            {"program": "qsort"},
            {"scale": 0.1},
            {"seed": 7},
            {"lock_scheme": "ttas"},
            {"lock_kwargs": (("burst", 2),)},
            {"consistency": "wo"},
            {"machine": MachineConfig(n_procs=8)},
            {"machine": MachineConfig(n_procs=4, cachebus_buffer_depth=2)},
            {"machine": MachineConfig(n_procs=4, memory=MemoryConfig(access_cycles=9))},
            {"machine": MachineConfig(n_procs=4, cache=CacheConfig(size_bytes=16 * 1024))},
            {"machine": None},
            {"n_procs": 6},
            {"max_events": 10_000},
        ],
        ids=lambda c: next(iter(c)),
    )
    def test_any_field_changes_key(self, change):
        assert replace(self.BASE, **change).cache_key() != self.BASE.cache_key()

    def test_key_is_stable(self):
        assert self.BASE.cache_key() == self.BASE.cache_key()
        clone = JobSpec.from_dict(self.BASE.to_dict())
        assert clone.cache_key() == self.BASE.cache_key()

    def test_lock_kwargs_order_canonical(self):
        a = replace(self.BASE, lock_kwargs={"a": 1, "b": 2})
        b = replace(self.BASE, lock_kwargs={"b": 2, "a": 1})
        assert a.cache_key() == b.cache_key()

    def test_attached_canonical_traceset_does_not_change_key(self):
        ts = generate_trace("fullconn", scale=0.05, seed=1991)
        assert self.BASE.with_traceset(ts).cache_key() == self.BASE.cache_key()

    def test_content_addressed_trace_digest_in_key(self):
        ts1 = generate_trace("fullconn", scale=0.05, seed=1991)
        ts2 = generate_trace("fullconn", scale=0.05, seed=2)
        s1 = JobSpec(program="", traceset=ts1)
        s2 = JobSpec(program="", traceset=ts2)
        assert s1.trace_digest and s2.trace_digest
        assert s1.cache_key() != s2.cache_key()
        # digest is a function of content only
        ts1b = generate_trace("fullconn", scale=0.05, seed=1991)
        assert traceset_digest(ts1b) == traceset_digest(ts1)

    def test_program_or_traceset_required(self):
        with pytest.raises(ValueError, match="program name or a traceset"):
            JobSpec(program="")


class TestCacheInvalidation:
    def test_corrupt_object_is_invalidated(self, cache):
        cache.put(SPEC, SPEC.run())
        path = cache.path_for(SPEC.cache_key())
        path.write_text("{ not json")
        assert cache.get(SPEC) is None
        assert cache.stats.invalidated == 1
        assert not path.exists()  # discarded, not retried forever

    def test_stale_format_is_invalidated(self, cache):
        cache.put(SPEC, SPEC.run())
        path = cache.path_for(SPEC.cache_key())
        payload = json.loads(path.read_text())
        payload["format"] = CACHE_FORMAT + 1
        path.write_text(json.dumps(payload))
        assert cache.get(SPEC) is None
        assert cache.stats.invalidated == 1

    def test_key_mismatch_is_invalidated(self, cache):
        cache.put(SPEC, SPEC.run())
        path = cache.path_for(SPEC.cache_key())
        payload = json.loads(path.read_text())
        payload["key"] = "0" * 64
        path.write_text(json.dumps(payload))
        assert cache.get(SPEC) is None
        assert cache.stats.invalidated == 1

    def test_truncated_object_is_invalidated(self, cache):
        """A crash mid-write elsewhere (or disk trouble) can leave a
        prefix of a valid object: parseable failures, not just garbage."""
        cache.put(SPEC, SPEC.run())
        path = cache.path_for(SPEC.cache_key())
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        assert cache.get(SPEC) is None
        assert cache.stats.invalidated == 1
        assert not path.exists()

    def test_malformed_result_payload_is_invalidated(self, cache):
        """Valid JSON whose result decodes with an exception *outside*
        the old (KeyError, TypeError, ValueError) tuple -- e.g. the
        AttributeError from a list where a mapping belongs -- must heal
        like any other corrupt object instead of escaping to the caller."""
        cache.put(SPEC, SPEC.run())
        path = cache.path_for(SPEC.cache_key())
        payload = json.loads(path.read_text())
        payload["result"]["bus_op_counts"] = ["not", "a", "mapping"]
        path.write_text(json.dumps(payload))
        assert cache.get(SPEC) is None
        assert cache.stats.invalidated == 1
        assert not path.exists()

    def test_heals_then_repopulates(self, cache):
        cache.put(SPEC, SPEC.run())
        path = cache.path_for(SPEC.cache_key())
        path.write_text("{ not json")
        assert cache.get(SPEC) is None
        fresh = SPEC.run()
        cache.put(SPEC, fresh)
        assert cache.get(SPEC) == fresh
