"""Tests for the Barnes-Hut quadtree used by the Grav model."""

import numpy as np
import pytest

from repro.workloads.bhtree import QuadTree, clustered_positions


@pytest.fixture
def rng():
    return np.random.default_rng(77)


class TestInsertion:
    def test_first_insert_is_root_only(self):
        qt = QuadTree()
        path = qt.insert(0.3, 0.4)
        assert path == [qt.root.node_id]
        assert qt.total_bodies() == 1

    def test_second_insert_splits(self):
        qt = QuadTree()
        qt.insert(0.2, 0.2)
        path = qt.insert(0.8, 0.8)
        assert len(path) >= 2
        assert qt.total_bodies() == 2
        assert qt.root.children is not None

    def test_paths_start_at_root(self, rng):
        qt = QuadTree()
        for _ in range(50):
            x, y = rng.random(2)
            path = qt.insert(float(x), float(y))
            assert path[0] == qt.root.node_id

    def test_counts_consistent(self, rng):
        qt = QuadTree()
        for _ in range(120):
            x, y = rng.random(2)
            qt.insert(float(x), float(y))
        assert qt.total_bodies() == 120

    def test_colocated_bodies_bounded_by_max_depth(self):
        qt = QuadTree()
        for _ in range(20):
            qt.insert(0.51, 0.51, max_depth=6)
        assert qt.depth() <= 8  # max_depth plus slack for the split push

    def test_deeper_for_clustered_input(self, rng):
        uniform = QuadTree()
        for xy in rng.random((200, 2)):
            uniform.insert(float(xy[0]), float(xy[1]))
        clustered = QuadTree()
        for xy in clustered_positions(rng, 200, clusters=1):
            clustered.insert(float(xy[0]), float(xy[1]))
        assert clustered.depth() >= uniform.depth()


class TestTraversal:
    def _tree(self, rng, n=150):
        qt = QuadTree()
        pts = clustered_positions(rng, n)
        for x, y in pts:
            qt.insert(float(x), float(y))
        return qt, pts

    def test_traversal_visits_root_first(self, rng):
        qt, pts = self._tree(rng)
        visited = qt.traverse(0.5, 0.5)
        assert visited[0] == qt.root.node_id

    def test_small_theta_visits_more(self, rng):
        qt, pts = self._tree(rng)
        x, y = map(float, pts[0])
        strict = len(qt.traverse(x, y, theta=0.2))
        loose = len(qt.traverse(x, y, theta=1.2))
        assert strict > loose

    def test_traversal_bounded_by_tree_size(self, rng):
        qt, pts = self._tree(rng)
        for x, y in pts[:20]:
            assert len(qt.traverse(float(x), float(y))) <= qt.n_nodes

    def test_empty_tree_traversal(self):
        qt = QuadTree()
        assert qt.traverse(0.5, 0.5) == []

    def test_nearby_body_opens_more_cells_than_far_point(self, rng):
        qt, pts = self._tree(rng)
        inside = len(qt.traverse(float(pts[0][0]), float(pts[0][1]), theta=0.5))
        # a point far outside the cluster mass accepts big cells early
        outside = len(qt.traverse(0.999, 0.001, theta=0.5))
        assert inside >= outside


class TestClusteredPositions:
    def test_in_unit_square(self, rng):
        pts = clustered_positions(rng, 500)
        assert pts.shape == (500, 2)
        assert (pts > 0).all() and (pts < 1).all()

    def test_clustering_reduces_spread(self, rng):
        clustered = clustered_positions(rng, 500, clusters=1)
        uniform = rng.random((500, 2))
        assert clustered.std() < uniform.std()
