"""Failure-injection tests: malformed inputs and abuse of the public
API must fail loudly, never hang or corrupt results."""

import numpy as np
import pytest

from repro.consistency import SEQUENTIAL
from repro.machine.system import System
from repro.sync import QueuingLockManager, TestAndTestAndSetLockManager
from repro.trace.layout import AddressLayout
from repro.trace.records import LOCK, READ, RECORD_DTYPE, UNLOCK, Trace, TraceSet
from tests.conftest import tiny_machine


def raw_traceset(rows_per_proc, program="abuse"):
    layout = AddressLayout(len(rows_per_proc))
    traces = []
    for p, rows in enumerate(rows_per_proc):
        rec = np.zeros(len(rows), dtype=RECORD_DTYPE)
        for i, row in enumerate(rows):
            rec[i] = row
        traces.append(Trace(rec, proc=p, program=program))
    return TraceSet(traces, layout, program=program)


LOCKA = 0x2000_0000
SH = 0x1000_0000


class TestMalformedTraces:
    def test_unlock_without_lock_raises(self):
        ts = raw_traceset([[(UNLOCK, LOCKA, 1, 0)]])
        system = System(ts, tiny_machine(1), QueuingLockManager(), SEQUENTIAL)
        with pytest.raises(RuntimeError, match="owned by"):
            system.run()

    def test_ttas_release_without_hold_raises(self):
        ts = raw_traceset([[(UNLOCK, LOCKA, 1, 0)]])
        system = System(ts, tiny_machine(1), TestAndTestAndSetLockManager(), SEQUENTIAL)
        with pytest.raises(RuntimeError):
            system.run()

    def test_unknown_record_kind_raises(self):
        ts = raw_traceset([[(99, SH, 1, 0)]])
        system = System(ts, tiny_machine(1), QueuingLockManager(), SEQUENTIAL)
        with pytest.raises(ValueError, match="unknown record kind"):
            system.run()

    def test_lock_order_inversion_detected_as_deadlock(self):
        """Cyclic acquisition order across processors: the simulator
        must report deadlock, not hang."""
        p0 = [
            (LOCK, LOCKA, 1, 0),
            (LOCK, LOCKA + 16, 2, 0),
            (UNLOCK, LOCKA + 16, 2, 0),
            (UNLOCK, LOCKA, 1, 0),
        ]
        p1 = [
            (LOCK, LOCKA + 16, 2, 0),
            (LOCK, LOCKA, 1, 0),
            (UNLOCK, LOCKA, 1, 0),
            (UNLOCK, LOCKA + 16, 2, 0),
        ]
        # interleave deterministically: both acquire their first lock
        # before wanting the second (no work between, so both enqueue)
        ts = raw_traceset([p0, p1])
        system = System(ts, tiny_machine(2), QueuingLockManager(), SEQUENTIAL)
        with pytest.raises(RuntimeError, match="deadlock"):
            system.run()


class TestAPIAbuse:
    def test_system_is_single_use(self):
        ts = raw_traceset([[(READ, SH, 1, 0)]])
        system = System(ts, tiny_machine(1), QueuingLockManager(), SEQUENTIAL)
        system.run()
        with pytest.raises(RuntimeError, match="single-use"):
            system.run()

    def test_proc_count_mismatch_adapts(self):
        ts = raw_traceset([[(READ, SH, 1, 0)]] * 3)
        system = System(ts, tiny_machine(8), QueuingLockManager(), SEQUENTIAL)
        result = system.run()
        assert result.n_procs == 3

    def test_max_events_guard_stops_runaway(self):
        ts = raw_traceset([[(READ, SH + 16 * i, 1, 0) for i in range(50)]])
        system = System(
            ts, tiny_machine(1), QueuingLockManager(), SEQUENTIAL, max_events=10
        )
        with pytest.raises(RuntimeError, match="exceeded"):
            system.run()


class TestCorruptTraceFiles:
    def test_truncated_file_rejected(self, tmp_path):
        from repro.trace.encode import load_traceset, save_traceset
        from repro.workloads import generate_trace

        path = tmp_path / "t.npz"
        save_traceset(generate_trace("fullconn", scale=0.02), path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(Exception):
            load_traceset(path)

    def test_garbage_file_rejected(self, tmp_path):
        from repro.trace.encode import load_traceset

        path = tmp_path / "junk.npz"
        path.write_bytes(b"not an npz archive at all")
        with pytest.raises(Exception):
            load_traceset(path)

    def test_missing_processor_entry_rejected(self, tmp_path):
        import numpy as np

        from repro.trace.encode import load_traceset, save_traceset
        from repro.workloads import generate_trace

        path = tmp_path / "t.npz"
        ts = generate_trace("fullconn", scale=0.02)
        save_traceset(ts, path)
        with np.load(path) as archive:
            arrays = {k: archive[k] for k in archive.files}
        del arrays["proc3"]
        np.savez(path, **arrays)
        with pytest.raises(KeyError):
            load_traceset(path)
