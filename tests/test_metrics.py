"""Tests for the metrics records (ProcMetrics / RunResult derived
quantities)."""

import pytest

from repro.machine.metrics import ProcMetrics, RunResult
from repro.sync.stats import LockStats, LockStatsCollector


def metrics(work=100, miss=20, lock=30, drain=0, buf=0, completion=150):
    m = ProcMetrics(0)
    m.work_cycles = work
    m.stall_miss = miss
    m.stall_lock = lock
    m.stall_drain = drain
    m.stall_buffer = buf
    m.completion_time = completion
    return m


def empty_lock_stats():
    return LockStatsCollector().snapshot()


def result(procs, **kw):
    defaults = dict(
        program="p",
        n_procs=len(procs),
        lock_scheme="queuing",
        consistency="sc",
        run_time=max(m.completion_time for m in procs),
        proc_metrics=tuple(procs),
        lock_stats=empty_lock_stats(),
        bus_busy_cycles=50,
        bus_op_counts={},
        read_hits=80,
        read_misses=20,
        write_hits=18,
        write_misses=2,
        ifetch_hits=200,
        ifetch_misses=4,
        writebacks=1,
        c2c_supplied=2,
        invalidations_received=3,
        buffer_max_occupancy=2,
    )
    defaults.update(kw)
    return RunResult(**defaults)


class TestProcMetrics:
    def test_total_stall(self):
        m = metrics(miss=10, lock=20, drain=5, buf=7)
        assert m.total_stall == 42

    def test_utilization(self):
        m = metrics(work=75, completion=100)
        assert m.utilization == pytest.approx(0.75)

    def test_utilization_before_completion(self):
        m = ProcMetrics(0)
        assert m.utilization == 1.0


class TestRunResult:
    def test_avg_utilization_is_mean_of_per_proc(self):
        r = result([metrics(work=50, completion=100), metrics(work=100, completion=100)])
        assert r.avg_utilization == pytest.approx(0.75)

    def test_stall_percentages(self):
        r = result([metrics(miss=30, lock=70, completion=200)])
        assert r.stall_pct_miss == pytest.approx(30.0)
        assert r.stall_pct_lock == pytest.approx(70.0)
        assert r.stall_pct_drain == 0.0

    def test_stall_percentages_no_stalls(self):
        r = result([metrics(miss=0, lock=0, completion=100)])
        assert r.stall_pct_miss == 0.0
        assert r.stall_pct_lock == 0.0

    def test_hit_ratios(self):
        r = result([metrics()])
        assert r.write_hit_ratio == pytest.approx(0.9)
        assert r.read_hit_ratio == pytest.approx(0.8)

    def test_bus_utilization(self):
        r = result([metrics(completion=200)], bus_busy_cycles=50)
        assert r.bus_utilization == pytest.approx(0.25)

    def test_summary_mentions_key_numbers(self):
        r = result([metrics()])
        s = r.summary()
        assert "p:" in s
        assert "utilization" in s
        assert "locks=queuing" in s

    def test_total_work(self):
        r = result([metrics(work=10), metrics(work=20)])
        assert r.total_work_cycles == 30


class TestLockStatsDerived:
    def test_empty_stats_zero_safe(self):
        s = empty_lock_stats()
        assert s.avg_hold == 0.0
        assert s.avg_waiters_at_transfer == 0.0
        assert s.avg_handoff == 0.0
        assert s.avg_uncontended_acquire == 0.0

    def test_collector_accumulates(self):
        c = LockStatsCollector()
        c.on_acquire(1, via_transfer=False)
        c.on_uncontended_acquire_latency(6)
        c.on_release(100, waiters_left=0, transferred=False)
        c.on_acquire(1, via_transfer=True)
        c.on_handoff(4)
        c.on_release(50, waiters_left=2, transferred=True)
        s = c.snapshot()
        assert s.acquisitions == 2
        assert s.avg_hold == pytest.approx(75.0)
        assert s.transfers == 1
        assert s.avg_waiters_at_transfer == 2.0
        assert s.avg_transfer_hold == 50.0
        assert s.avg_handoff == 4.0
        assert c.per_lock_acquisitions[1] == 2

    def test_snapshot_is_frozen_value(self):
        c = LockStatsCollector()
        c.on_acquire(1, via_transfer=False)
        s1 = c.snapshot()
        c.on_acquire(1, via_transfer=False)
        s2 = c.snapshot()
        assert s1.acquisitions == 1
        assert s2.acquisitions == 2
        assert isinstance(s1, LockStats)
