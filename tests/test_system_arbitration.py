"""Unit tests for System.can_issue / the MSHR in-flight table: the
arbitration-time decisions that keep coherence and memory flow correct."""

import pytest

from repro.consistency import SEQUENTIAL
from repro.machine.buffers import (
    LOCK_MEM,
    LOCK_READ,
    READ_MISS,
    RFO,
    UPGRADE,
    WRITEBACK,
    BusOp,
)
from repro.machine.cache import SHARED
from repro.machine.system import System
from repro.sync import QueuingLockManager
from tests.conftest import make_traceset, tiny_machine


@pytest.fixture
def system():
    ts = make_traceset([lambda b, l: None] * 3)
    return System(ts, tiny_machine(n_procs=3), QueuingLockManager(), SEQUENTIAL)


class TestCanIssue:
    def test_read_miss_needs_memory_space_without_supplier(self, system):
        op = BusOp(READ_MISS, 0x111, 0)
        assert system.can_issue(op, 0)
        system.memory.reserve()
        system.memory.reserve()  # input buffer (2) fully committed
        assert not system.can_issue(op, 0)

    def test_read_miss_with_supplier_ignores_memory(self, system):
        system.caches[1].install(0x111, SHARED)
        system.memory.reserve()
        system.memory.reserve()
        op = BusOp(READ_MISS, 0x111, 0)
        assert system.can_issue(op, 0)
        assert op.supplier[0] == "cache"
        assert op.supplier[1] == 1

    def test_writeback_needs_memory_space(self, system):
        op = BusOp(WRITEBACK, 0x222, 0)
        assert system.can_issue(op, 0)
        system.memory.reserve()
        system.memory.reserve()
        assert not system.can_issue(op, 0)

    def test_upgrade_issuable_while_line_resident(self, system):
        system.caches[0].install(0x333, SHARED)
        system.memory.reserve()
        system.memory.reserve()
        # even with memory full: an invalidation needs no memory
        assert system.can_issue(BusOp(UPGRADE, 0x333, 0), 0)

    def test_lost_upgrade_needs_rfo_resources(self, system):
        system.memory.reserve()
        system.memory.reserve()
        # line not resident anywhere, memory full: cannot issue
        assert not system.can_issue(BusOp(UPGRADE, 0x333, 0), 0)

    def test_lock_read_supplier_from_lock_manager(self, system):
        st = system.locks.state_of(1, 0x2000_0000 >> 4)
        st.cached_by.add(2)
        op = BusOp(LOCK_READ, st.line, 0)
        system.memory.reserve()
        system.memory.reserve()
        assert system.can_issue(op, 0)
        assert op.supplier == ("lock", 2, None)

    def test_lock_mem_always_goes_to_memory(self, system):
        st = system.locks.state_of(1, 0x2000_0000 >> 4)
        st.cached_by.add(2)
        op = BusOp(LOCK_MEM, st.line, 0)
        assert system.can_issue(op, 0)
        system.memory.reserve()
        system.memory.reserve()
        assert not system.can_issue(op, 0)


class TestMSHRTable:
    def test_second_miss_on_inflight_line_waits(self, system):
        a = BusOp(READ_MISS, 0x444, 0)
        assert system.can_issue(a, 0)
        system._exec_read_miss(a, 0)  # registers the in-flight fill
        b = BusOp(READ_MISS, 0x444, 1)
        assert not system.can_issue(b, 0)
        c = BusOp(RFO, 0x444, 2)
        assert not system.can_issue(c, 0)

    def test_own_inflight_line_does_not_block(self, system):
        a = BusOp(READ_MISS, 0x444, 0)
        system._exec_read_miss(a, 0)
        again = BusOp(RFO, 0x444, 0)
        assert system.can_issue(again, 0)

    def test_fill_completion_clears_and_serves_c2c(self, system):
        a = BusOp(READ_MISS, 0x444, 0)
        from repro.machine.cache import EXCLUSIVE

        a.fill_state = EXCLUSIVE
        hold, done = system._exec_read_miss(a, 0)
        system.engine.at(hold, done)  # what the bus does with the result
        system.engine.run()  # lets the c2c completion fire
        assert 0x444 not in system._fills_in_flight
        b = BusOp(READ_MISS, 0x444, 1)
        assert system.can_issue(b, system.engine.now)
        assert b.supplier[0] == "cache"

    def test_other_lines_unaffected(self, system):
        a = BusOp(READ_MISS, 0x444, 0)
        system._exec_read_miss(a, 0)
        other = BusOp(READ_MISS, 0x445, 1)
        assert system.can_issue(other, 0)
