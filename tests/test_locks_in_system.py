"""Integration tests: locks running in the full simulated machine.

The key safety property is mutual exclusion: with the lock managers
deciding contention at simulation time, no two processors may ever be
inside a critical section for the same lock simultaneously.  We verify
it by instrumenting grant/release times.
"""

import pytest

from repro.consistency import SEQUENTIAL, WEAK
from repro.machine.system import System
from repro.sync import (
    ExactQueuingLockManager,
    QueuingLockManager,
    TestAndSetLockManager,
    TestAndTestAndSetLockManager,
)
from tests.conftest import make_traceset, tiny_machine

ALL_SCHEMES = [
    QueuingLockManager,
    ExactQueuingLockManager,
    TestAndTestAndSetLockManager,
    TestAndSetLockManager,
]


class IntervalRecorder:
    """Wraps a lock manager to record [grant, release) per proc/lock."""

    def __init__(self, mgr):
        self.mgr = mgr
        self.intervals: dict[int, list] = {}
        self._open: dict[tuple, int] = {}
        self._wrap()

    def _wrap(self):
        orig_acquire = self.mgr.acquire
        orig_release = self.mgr.release

        def acquire(proc, lock_id, line, time, grant_cb):
            def cb(t, contended):
                self._open[(proc, lock_id)] = t
                grant_cb(t, contended)

            orig_acquire(proc, lock_id, line, time, cb)

        def release(proc, lock_id, line, time, done_cb):
            start = self._open.pop((proc, lock_id))
            self.intervals.setdefault(lock_id, []).append((start, time, proc))
            orig_release(proc, lock_id, line, time, done_cb)

        self.mgr.acquire = acquire
        self.mgr.release = release

    def assert_mutual_exclusion(self):
        for lock_id, ivals in self.intervals.items():
            ivals = sorted(ivals)
            for (s1, e1, p1), (s2, e2, p2) in zip(ivals, ivals[1:]):
                assert s2 >= e1, (
                    f"lock {lock_id}: proc {p2} entered at {s2} before "
                    f"proc {p1} left at {e1}"
                )


def contended_traceset(n_procs=4, css=6):
    """Every processor hammers one lock with work inside and outside."""

    state = {}

    def fn(b, layout):
        if "lock" not in state:
            state["lock"] = layout.alloc_lock()
            state["sh"] = layout.alloc_shared(64)
            state["code"] = layout.alloc_code(64)
        la, sh, code = state["lock"], state["sh"], state["code"]
        for i in range(css):
            b.block(4, 30, code)
            b.lock(0, la)
            b.block(4, 40, code)
            b.read(sh)
            b.write(sh + 4)
            b.unlock(0, la)

    return make_traceset([fn] * n_procs)


@pytest.mark.parametrize("scheme", ALL_SCHEMES, ids=lambda c: c.name)
class TestMutualExclusion:
    def test_no_overlapping_critical_sections(self, scheme):
        ts = contended_traceset()
        mgr = scheme()
        rec = IntervalRecorder(mgr)
        system = System(ts, tiny_machine(n_procs=4), mgr, SEQUENTIAL)
        system.run()
        assert sum(len(v) for v in rec.intervals.values()) == 4 * 6
        rec.assert_mutual_exclusion()

    def test_all_acquisitions_granted(self, scheme):
        ts = contended_traceset(n_procs=3, css=4)
        mgr = scheme()
        system = System(ts, tiny_machine(n_procs=3), mgr, SEQUENTIAL)
        result = system.run()
        assert result.lock_stats.acquisitions == 12

    def test_weak_ordering_also_safe(self, scheme):
        ts = contended_traceset(n_procs=3, css=4)
        mgr = scheme()
        rec = IntervalRecorder(mgr)
        system = System(ts, tiny_machine(n_procs=3), mgr, WEAK)
        system.run()
        rec.assert_mutual_exclusion()


class TestContentionMetricsEndToEnd:
    def test_transfers_happen_under_contention(self):
        ts = contended_traceset(n_procs=6, css=8)
        mgr = QueuingLockManager()
        system = System(ts, tiny_machine(n_procs=6), mgr, SEQUENTIAL)
        result = system.run()
        assert result.lock_stats.transfers > 0
        assert result.lock_stats.avg_waiters_at_transfer > 0
        assert result.stall_pct_lock > 30

    def test_uncontended_locks_cost_misses_not_lock_waits(self):
        """A single processor locking alone never waits."""

        def fn(b, layout):
            la = layout.alloc_lock()
            code = layout.alloc_code(16)
            for _ in range(5):
                b.lock(0, la)
                b.block(2, 20, code)
                b.unlock(0, la)

        ts = make_traceset([fn])
        system = System(ts, tiny_machine(n_procs=1), QueuingLockManager(), SEQUENTIAL)
        result = system.run()
        m = result.proc_metrics[0]
        assert m.stall_lock == 0
        assert m.stall_miss > 0  # the acquire/release memory accesses

    def test_ttas_generates_more_bus_traffic_than_queuing(self):
        ts1 = contended_traceset(n_procs=6, css=8)
        r_q = System(
            ts1, tiny_machine(n_procs=6), QueuingLockManager(), SEQUENTIAL
        ).run()
        ts2 = contended_traceset(n_procs=6, css=8)
        r_t = System(
            ts2, tiny_machine(n_procs=6), TestAndTestAndSetLockManager(), SEQUENTIAL
        ).run()
        assert r_t.bus_busy_cycles > r_q.bus_busy_cycles
        assert r_t.lock_stats.avg_handoff > r_q.lock_stats.avg_handoff

    def test_nested_locks_simulate_correctly(self):
        """The Presto pattern: inner lock inside outer, plus the inner
        alone -- must run to completion under contention."""
        state = {}

        def fn(b, layout):
            if "outer" not in state:
                state["outer"] = layout.alloc_lock()
                state["inner"] = layout.alloc_lock()
                state["code"] = layout.alloc_code(16)
            o, i, code = state["outer"], state["inner"], state["code"]
            for _ in range(4):
                b.lock(0, o)
                b.lock(1, i)
                b.block(2, 30, code)
                b.unlock(1, i)
                b.unlock(0, o)
                b.lock(1, i)  # inner alone (enqueue path)
                b.block(2, 10, code)
                b.unlock(1, i)

        ts = make_traceset([fn] * 4)
        mgr = QueuingLockManager()
        rec = IntervalRecorder(mgr)
        result = System(ts, tiny_machine(n_procs=4), mgr, SEQUENTIAL).run()
        assert result.lock_stats.acquisitions == 4 * 4 * 3
        rec.assert_mutual_exclusion()
