"""Round-trip tests for the on-disk trace format."""

import numpy as np
import pytest

from repro.trace.builder import TraceBuilder
from repro.trace.encode import (
    dumps_traceset,
    load_traceset,
    loads_traceset,
    save_traceset,
)
from repro.trace.layout import AddressLayout
from repro.trace.records import TraceSet


def sample_traceset(n_procs=3):
    layout = AddressLayout(n_procs)
    code = layout.alloc_code(256)
    sh = layout.alloc_shared(256)
    la = layout.alloc_lock()
    traces = []
    for p in range(n_procs):
        b = TraceBuilder(p, layout, program="sample")
        b.block(4, 10, code)
        b.read(sh + 16 * p, reps=2)
        b.lock(0, la)
        b.write(sh)
        b.unlock(0, la)
        traces.append(b.finish())
    return TraceSet(traces, layout, program="sample", meta={"scale": 0.5, "seed": 7})


class TestRoundTrip:
    def test_file_roundtrip(self, tmp_path):
        ts = sample_traceset()
        path = tmp_path / "t.npz"
        save_traceset(ts, path)
        ts2 = load_traceset(path)
        assert ts2.program == ts.program
        assert ts2.n_procs == ts.n_procs
        assert ts2.meta == ts.meta
        for a, b in zip(ts.traces, ts2.traces):
            assert np.array_equal(a.records, b.records)
            assert a.proc == b.proc

    def test_bytes_roundtrip(self):
        ts = sample_traceset(2)
        ts2 = loads_traceset(dumps_traceset(ts))
        for a, b in zip(ts.traces, ts2.traces):
            assert np.array_equal(a.records, b.records)

    def test_layout_roundtrip_continues_allocation(self, tmp_path):
        ts = sample_traceset(2)
        next_lock = ts.layout.alloc_lock()
        path = tmp_path / "t.npz"
        save_traceset(ts, path)
        ts2 = load_traceset(path)
        assert ts2.layout.alloc_lock() == ts.layout.alloc_lock()
        assert next_lock not in (ts2.layout.alloc_lock(),)

    def test_empty_traces_roundtrip(self, tmp_path):
        layout = AddressLayout(2)
        traces = [TraceBuilder(p, layout).finish() for p in range(2)]
        ts = TraceSet(traces, layout, program="empty")
        path = tmp_path / "e.npz"
        save_traceset(ts, path)
        ts2 = load_traceset(path)
        assert ts2.total_records() == 0

    def test_workload_trace_roundtrip(self, tmp_path):
        from repro.workloads import generate_trace

        ts = generate_trace("fullconn", scale=0.1)
        path = tmp_path / "f.npz"
        save_traceset(ts, path)
        ts2 = load_traceset(path)
        assert ts2.total_records() == ts.total_records()
        for a, b in zip(ts.traces, ts2.traces):
            assert np.array_equal(a.records, b.records)


class TestErrors:
    def test_bad_version_rejected(self, tmp_path):
        import json

        ts = sample_traceset(1)
        path = tmp_path / "t.npz"
        save_traceset(ts, path)
        with np.load(path) as archive:
            meta = json.loads(bytes(archive["__meta__"].tobytes()))
            arrays = {k: archive[k] for k in archive.files if k != "__meta__"}
        meta["version"] = 999
        arrays["__meta__"] = np.frombuffer(
            json.dumps(meta).encode(), dtype=np.uint8
        )
        np.savez(path, **arrays)
        with pytest.raises(ValueError, match="version"):
            load_traceset(path)
