"""Per-workload behavioural tests beyond the structural suite."""

import numpy as np
import pytest

from repro.machine.system import simulate
from repro.trace.records import LOCK, UNLOCK
from repro.trace.stats import compute_trace_stats
from repro.workloads import generate_trace


class TestTopopt:
    def test_proc0_has_higher_cpi(self):
        """'There is one processor whose trace has a much higher average
        CPI although it has the same length in references.'"""
        ts = generate_trace("topopt", scale=0.2)
        stats = [compute_trace_stats(t) for t in ts]
        cpi0 = stats[0].work_cycles / stats[0].all_refs
        others = [s.work_cycles / s.all_refs for s in stats[1:]]
        assert cpi0 > 1.4 * max(others)
        # same length in references
        assert abs(stats[0].all_refs - stats[1].all_refs) < 0.05 * stats[1].all_refs

    def test_skewed_proc_finishes_last(self):
        ts = generate_trace("topopt", scale=0.2)
        r = simulate(ts)
        times = [m.completion_time for m in r.proc_metrics]
        assert times[0] == max(times)
        assert r.run_time == times[0]


class TestPdsa:
    def test_anneal_lock_is_minor_next_to_scheduler(self):
        from repro.core.lockprofile import lock_profile

        ts = generate_trace("pdsa", scale=0.3)
        r = simulate(ts)
        rows = {row.name: row for row in lock_profile(r, ts)}
        assert rows["presto.scheduler"].acquisitions > 4 * rows["pdsa.anneal"].acquisitions

    def test_dispatch_rate_matches_table2_scaling(self):
        ts = generate_trace("pdsa", scale=1.0)
        s = compute_trace_stats(ts[0])
        # paper: 3110 pairs with 1467 nested at full length; at 1/20
        # scale: ~155 pairs, ~73 nested
        assert 120 <= s.lock_pairs <= 190
        assert 55 <= s.nested_locks <= 90


class TestFullConn:
    def test_every_node_lock_exists(self):
        ts = generate_trace("fullconn", scale=0.2)
        names = set(ts.layout.lock_names.values())
        for i in range(12):
            assert f"fullconn.node{i}" in names

    def test_nodes_never_lock_their_own_queue_for_sends(self):
        """Sends target other nodes: processor p never acquires its own
        node lock (it pops its queue without locking in this model)."""
        ts = generate_trace("fullconn", scale=0.3)
        by_name = {v: k for k, v in ts.layout.lock_names.items()}
        for t in ts:
            own = by_name[f"fullconn.node{t.proc}"]
            rec = t.records
            ids = rec["arg"][(rec["kind"] == LOCK)].tolist()
            assert own not in ids


class TestQsort:
    def test_queue_lock_pairs_balanced(self):
        ts = generate_trace("qsort", scale=0.5)
        stats = [compute_trace_stats(t) for t in ts]
        pairs = [s.lock_pairs for s in stats]
        assert min(pairs) > 0
        # self-scheduling spreads the pops fairly evenly
        assert max(pairs) <= 4 * min(pairs)

    def test_lock_and_unlock_counts_match_per_proc(self):
        ts = generate_trace("qsort", scale=0.2)
        for t in ts:
            assert t.count_kind(LOCK) == t.count_kind(UNLOCK)


class TestGrav:
    def test_tree_lock_heavier_in_build_phase(self):
        """Tree-lock events cluster in three waves (one per timestep)."""
        from repro.trace.inspect import lock_event_log

        ts = generate_trace("grav", scale=1.0)
        by_name = {v: k for k, v in ts.layout.lock_names.items()}
        tree_id = by_name["grav.tree"]
        events = [e for e in lock_event_log(ts, lock_id=tree_id) if e[0] == 0]
        assert events
        # per-proc: 3 waves of inserts -> 3 temporal clusters: check the
        # cycle positions have large gaps between waves
        cycles = sorted(e[2] for e in events if e[3] == "LOCK")
        gaps = [b - a for a, b in zip(cycles, cycles[1:])]
        if len(gaps) > 4:
            assert max(gaps) > 5 * (sorted(gaps)[len(gaps) // 2] + 1)

    def test_presto_scheduler_dominates_acquisitions(self):
        ts = generate_trace("grav", scale=0.5)
        s = compute_trace_stats(ts[0])
        # nested locks (the runqueue inside the scheduler) are ~46% of
        # pairs, the paper's Table 2 ratio
        assert 0.3 < s.nested_locks / s.lock_pairs < 0.6


class TestSyntheticRegistryEntry:
    def test_runnable_via_registry(self):
        from repro.workloads import generate_trace as gen

        ts = gen("synthetic", scale=0.05)
        assert ts.program == "synthetic"
        r = simulate(ts)
        assert r.lock_stats.acquisitions > 0
