"""Property suite for the binary wire framing (PR 10 satellite).

Three families of properties:

* **Round trip**: any frame-expressible message survives
  ``encode_frame`` -> ``read_frame`` bit-exactly, on either framing,
  blobs included, deflated or not.
* **Torn frames**: any strict prefix of a binary frame followed by EOF
  raises ``ConnectionError`` (never hangs, never returns garbage), and
  the error says how many bytes arrived.
* **Negotiation**: an auto client speaks binary to a binary server and
  falls back to JSON lines against a JSON-only server, transparently --
  the response payload is identical either way.

Plus the frame-cap satellite: an oversized frame must be refused with
an error naming the offending key and the frame size, on both the
client (encode) and server (response) paths.
"""

import asyncio
import json
import os
import struct
import zlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.service import transport as transport_mod
from repro.service.transport import (
    FLAG_DEFLATE,
    FRAME_MAGIC,
    Blob,
    FrameTooLarge,
    SocketTransport,
    decode_binary_body,
    encode_frame,
    read_frame,
    serve_socket,
)

pytestmark = pytest.mark.service

_HEADER = struct.Struct("!4sBIQ")


def _decode(frame: bytes):
    """Synchronously read one frame from raw bytes (EOF after)."""

    async def scenario():
        reader = asyncio.StreamReader()
        reader.feed_data(frame)
        reader.feed_eof()
        return await read_frame(reader)

    return asyncio.run(scenario())


# ----------------------------------------------------------------------
# Hypothesis strategies: frame-expressible messages
# ----------------------------------------------------------------------
_keys = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_0123456789", min_size=1, max_size=12
).filter(lambda k: k not in ("__blob__", "__blob_b64__"))

_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=24),
    st.builds(
        Blob,
        st.binary(max_size=256),
        st.sampled_from(["bytes", "npy", "json", "result-v1"]),
    ),
)

_values = st.recursive(
    _scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(_keys, children, max_size=4),
    ),
    max_leaves=12,
)

_messages = st.dictionaries(_keys, _values, max_size=6)


class TestRoundTrip:
    @given(obj=_messages)
    @settings(max_examples=150, deadline=None)
    def test_binary_frames_round_trip_exactly(self, obj):
        frame = encode_frame(obj, binary=True)
        assert frame[:1] == FRAME_MAGIC[:1]
        decoded, is_binary, nbytes = _decode(frame)
        assert is_binary
        assert nbytes == len(frame)
        assert decoded == obj

    @given(obj=_messages)
    @settings(max_examples=150, deadline=None)
    def test_json_frames_round_trip_exactly(self, obj):
        frame = encode_frame(obj, binary=False)
        assert frame.endswith(b"\n") and frame[:1] != FRAME_MAGIC[:1]
        decoded, is_binary, nbytes = _decode(frame)
        assert not is_binary
        assert nbytes == len(frame)
        assert decoded == obj

    def test_deflated_body_round_trips(self):
        # highly compressible payload well past the deflate threshold
        blob = Blob(b"\x07" * 100_000, "npy")
        obj = {"op": "fetch", "key": "k" * 64, "payload": blob}
        frame = encode_frame(obj, binary=True)
        _, flags, _, _ = _HEADER.unpack(frame[: _HEADER.size])[0:4]
        assert flags & FLAG_DEFLATE
        assert len(frame) < len(blob.data) // 10
        decoded, is_binary, _ = _decode(frame)
        assert is_binary and decoded == obj

    def test_incompressible_body_skips_deflate(self):
        obj = {"payload": Blob(os.urandom(4096), "bytes")}
        frame = encode_frame(obj, binary=True)
        flags = frame[4]
        assert not flags & FLAG_DEFLATE
        decoded, _, _ = _decode(frame)
        assert decoded == obj

    @given(objs=st.lists(_messages, min_size=2, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_concatenated_frames_stay_delimited(self, objs):
        # mixed framings back to back on one stream: each frame must
        # consume exactly its own bytes
        async def scenario():
            reader = asyncio.StreamReader()
            for n, obj in enumerate(objs):
                reader.feed_data(encode_frame(obj, binary=bool(n % 2)))
            reader.feed_eof()
            out = []
            while True:
                read = await read_frame(reader)
                if read is None:
                    return out
                out.append(read[0])

        assert asyncio.run(scenario()) == objs


class TestTornFrames:
    @given(obj=_messages, data=st.data())
    @settings(max_examples=100, deadline=None)
    def test_any_binary_prefix_is_rejected(self, obj, data):
        frame = encode_frame(obj, binary=True)
        cut = data.draw(st.integers(min_value=1, max_value=len(frame) - 1))
        with pytest.raises(ConnectionError, match="torn binary frame"):
            _decode(frame[:cut])

    def test_empty_stream_is_clean_eof(self):
        assert _decode(b"") is None

    def test_torn_frame_error_reports_byte_counts(self):
        frame = encode_frame({"op": "ping"}, binary=True)
        with pytest.raises(ConnectionError, match=r"\d+ of \d+ bytes"):
            _decode(frame[: len(frame) - 1])

    def test_oversized_declared_body_is_refused_unread(self):
        # a hostile header claiming a huge body must be rejected from
        # the 17 header bytes alone, before buffering anything
        header = _HEADER.pack(FRAME_MAGIC, 0, 10, transport_mod.MAX_FRAME_BYTES + 1)
        with pytest.raises(ConnectionError, match="exceeds"):
            _decode(header)

    def test_segment_table_overrun_is_refused(self):
        meta = json.dumps({"c": {"x": {"__blob__": 0}}, "b": [["bytes", 999]]}).encode()
        body = meta + b"short"
        frame = _HEADER.pack(FRAME_MAGIC, 0, len(meta), len(body)) + body
        with pytest.raises(ConnectionError, match="overruns"):
            _decode(frame)

    def test_meta_length_past_body_is_refused(self):
        with pytest.raises(ConnectionError, match="meta length"):
            decode_binary_body(0, 100, b"tiny")

    def test_truncated_deflate_stream_is_refused(self):
        packed = zlib.compress(b"x" * 10_000)
        with pytest.raises(ConnectionError, match="truncated|cap"):
            decode_binary_body(FLAG_DEFLATE, 4, packed[: len(packed) // 2])


class TestNegotiation:
    def _echo_server(self, binary: bool):
        async def handler(request):
            return {
                "ok": True,
                "echo": request.get("value"),
                "blob": request.get("blob"),
            }

        return serve_socket(handler, binary=binary)

    def _call_through(self, server_binary: bool, client_binary: str = "auto"):
        async def scenario():
            server, port = await self._echo_server(server_binary)
            t = SocketTransport("127.0.0.1", port, binary=client_binary)
            try:
                response = await t.call(
                    {"op": "echo", "value": 17, "blob": Blob(b"\x00\xff", "bytes")}
                )
                return response, t._use_binary
            finally:
                await t.close()
                server.close()
                await server.wait_closed()

        return asyncio.run(scenario())

    def test_auto_client_binary_server_goes_binary(self):
        response, use_binary = self._call_through(server_binary=True)
        assert use_binary is True
        assert response["echo"] == 17
        assert response["blob"] == Blob(b"\x00\xff", "bytes")

    def test_auto_client_falls_back_to_json_lines(self):
        # a JSON-only server declines the offer; the same payload still
        # round-trips (blobs degrade to base64 markers on the wire)
        response, use_binary = self._call_through(server_binary=False)
        assert use_binary is False
        assert response["echo"] == 17
        assert response["blob"] == Blob(b"\x00\xff", "bytes")

    def test_never_client_speaks_json_to_binary_server(self):
        response, use_binary = self._call_through(
            server_binary=True, client_binary="never"
        )
        assert use_binary is False
        assert response["echo"] == 17
        assert response["blob"] == Blob(b"\x00\xff", "bytes")

    def test_plain_json_server_without_negotiation_support(self):
        # a PR-6-era server: newline JSON, no __negotiate__ handling.
        # The unknown-op error must read as a decline, not a failure.
        async def scenario():
            async def on_connection(reader, writer):
                while line := await reader.readline():
                    request = json.loads(line)
                    if request.get("op") == "echo":
                        body = {"ok": True, "echo": request["value"]}
                    else:
                        body = {"ok": False, "message": "unknown op"}
                    writer.write(json.dumps(body).encode() + b"\n")
                    await writer.drain()

            server = await asyncio.start_server(on_connection, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            t = SocketTransport("127.0.0.1", port)
            try:
                return await t.call({"op": "echo", "value": 3}), t._use_binary
            finally:
                await t.close()
                server.close()
                await server.wait_closed()

        response, use_binary = asyncio.run(scenario())
        assert use_binary is False
        assert response == {"ok": True, "echo": 3}

    def test_transport_metrics_count_frames_and_bytes(self):
        from repro.service import ServiceMetrics

        async def scenario():
            server, port = await self._echo_server(True)
            metrics = ServiceMetrics()
            t = SocketTransport("127.0.0.1", port, metrics=metrics)
            try:
                await t.call({"op": "echo", "value": 1})
                return metrics
            finally:
                await t.close()
                server.close()
                await server.wait_closed()

        metrics = asyncio.run(scenario())
        # one JSON hello + one binary request
        assert metrics.frames_json == 1
        assert metrics.frames_binary == 1
        assert metrics.bytes_sent > 0
        assert metrics.bytes_received > 0


class TestFrameCap:
    """Satellite: the cap error must name the offending key and size."""

    def test_binary_cap_names_key_and_size(self, monkeypatch):
        monkeypatch.setattr(transport_mod, "MAX_FRAME_BYTES", 1024)
        # incompressible payload: the cap applies to on-wire bytes, so
        # deflate must not be able to rescue the frame
        obj = {"op": "fetch", "key": "deadbeef", "payload": Blob(os.urandom(4096))}
        with pytest.raises(FrameTooLarge) as err:
            encode_frame(obj, binary=True)
        message = str(err.value)
        assert "key='deadbeef'" in message
        assert "op='fetch'" in message
        assert "1024-byte cap" in message
        assert "bytes" in message

    def test_json_cap_names_key_and_size(self, monkeypatch):
        monkeypatch.setattr(transport_mod, "MAX_FRAME_BYTES", 512)
        obj = {"key": "cafe", "blob": Blob(b"\x02" * 2048)}
        with pytest.raises(FrameTooLarge, match=r"key='cafe'.*512-byte cap"):
            encode_frame(obj, binary=False)

    def test_unkeyed_frame_still_identified(self, monkeypatch):
        monkeypatch.setattr(transport_mod, "MAX_FRAME_BYTES", 64)
        with pytest.raises(FrameTooLarge, match="unkeyed frame"):
            encode_frame({"x": "y" * 100}, binary=False)

    def test_shard_frames_identified_by_payload_count(self, monkeypatch):
        monkeypatch.setattr(transport_mod, "MAX_FRAME_BYTES", 64)
        with pytest.raises(FrameTooLarge, match=r"shard of 3 payload\(s\)"):
            encode_frame({"payloads": [{"a": 1}, {"b": 2}, {"c": "d" * 80}]}, False)

    def test_server_reports_oversized_response_instead_of_dying(self, monkeypatch):
        # the response path: the handler's answer exceeds the cap, the
        # connection must survive and the client must see the cap error
        async def handler(request):
            if request.get("op") == "big":
                return {"ok": True, "key": "bigkey", "payload": Blob(os.urandom(9000))}
            return {"ok": True, "op": "pong"}

        async def scenario():
            server, port = await serve_socket(handler)
            t = SocketTransport("127.0.0.1", port)
            try:
                monkeypatch.setattr(transport_mod, "MAX_FRAME_BYTES", 4096)
                big = await t.call({"op": "big"})
                after = await t.call({"op": "ping"})
                return big, after
            finally:
                monkeypatch.undo()
                await t.close()
                server.close()
                await server.wait_closed()

        big, after = asyncio.run(scenario())
        assert big["ok"] is False
        assert "key='bigkey'" in big["message"]
        assert "4096-byte cap" in big["message"]
        assert after == {"ok": True, "op": "pong"}
