"""Tests for the per-processor report and report odds-and-ends."""

import pytest

from repro.core.report import render_per_proc
from repro.machine.system import simulate
from repro.workloads import generate_trace


class TestPerProcReport:
    @pytest.fixture(scope="class")
    def result(self):
        return simulate(generate_trace("topopt", scale=0.05))

    def test_row_per_processor(self, result):
        text = render_per_proc(result)
        rows = [l for l in text.splitlines() if l and l.split("|")[0].strip().isdigit()]
        assert len(rows) == result.n_procs

    def test_average_in_title(self, result):
        text = render_per_proc(result)
        assert f"{100 * result.avg_utilization:.1f}%" in text

    def test_skewed_processor_visible(self, result):
        """Topopt's processor 0 (higher CPI) shows the longest completion."""
        times = [m.completion_time for m in result.proc_metrics]
        text = render_per_proc(result)
        assert f"{max(times):,}" in text

    def test_columns_cover_stall_categories(self, result):
        text = render_per_proc(result)
        for col in ("completion", "work", "util %", "miss stall", "lock stall", "other"):
            assert col in text

    def test_cli_flag(self, capsys):
        from repro.cli import main

        assert main(["--scale", "0.05", "run", "fullconn", "--per-proc"]) == 0
        out = capsys.readouterr().out
        assert "Per-processor detail" in out
