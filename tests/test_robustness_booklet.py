"""Tests for the seed-robustness study and the reproduction booklet."""

import pytest

from repro.core.booklet import build_booklet
from repro.core.robustness import MetricSpread, render_seed_study, seed_study


class TestSeedStudy:
    @pytest.fixture(scope="class")
    def spreads(self):
        return seed_study(seeds=(1, 2, 3), scale=0.15, programs=["grav", "pverify"])

    def test_metric_coverage(self, spreads):
        programs = {s.program for s in spreads}
        metrics = {s.metric for s in spreads}
        assert programs == {"grav", "pverify"}
        assert "utilization" in metrics and "waiters" in metrics

    def test_values_one_per_seed(self, spreads):
        assert all(len(s.values) == 3 for s in spreads)

    def test_headline_metrics_stable_across_seeds(self, spreads):
        """The paper's 'no change in the basic results' claim, seed
        edition: grav stays contended for every seed."""
        by = {(s.program, s.metric): s for s in spreads}
        g_util = by[("grav", "utilization")]
        assert max(g_util.values) < 65
        g_lock = by[("grav", "lock stall %")]
        assert min(g_lock.values) > 75
        v_util = by[("pverify", "utilization")]
        assert min(v_util.values) > 90

    def test_spread_statistics(self):
        s = MetricSpread("p", "m", (10.0, 12.0, 11.0))
        assert s.mean == pytest.approx(11.0)
        assert s.spread == pytest.approx(2.0 / 11.0)
        assert MetricSpread("p", "m", (0.0, 0.0)).spread == 0.0

    def test_render(self, spreads):
        text = render_seed_study(spreads, seeds=(1, 2, 3))
        assert "Seed-robustness" in text
        assert "grav" in text and "spread %" in text


class TestBooklet:
    @pytest.fixture(scope="class")
    def booklet(self):
        return build_booklet(scale=0.1, seed=3)

    def test_contains_every_artifact(self, booklet):
        for marker in (
            "Figure 1",
            "Table 1",
            "Table 2",
            "Table 3",
            "Table 4",
            "Table 5",
            "Table 6",
            "Table 7",
            "Table 8",
            "decomposition",
            "predictor study",
            "scorecard",
            "Fidelity report",
        ):
            assert marker in booklet, marker

    def test_all_programs_reported(self, booklet):
        for p in ("grav", "pdsa", "fullconn", "pverify", "qsort", "topopt"):
            assert p in booklet

    def test_header_stamps_parameters(self, booklet):
        assert "scale=0.1 seed=3" in booklet
