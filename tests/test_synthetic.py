"""Tests for the synthetic high-contention microbenchmark."""

import pytest

from repro.machine.system import simulate
from repro.sync import get_lock_manager
from repro.trace.validate import validate_traceset
from repro.workloads import SyntheticContention


class TestGeneration:
    def test_trace_validates(self):
        ts = SyntheticContention(scale=0.2).generate()
        validate_traceset(ts)

    def test_single_global_lock(self):
        ts = SyntheticContention(scale=0.2).generate()
        from repro.trace.records import LOCK

        ids = set()
        for t in ts:
            rec = t.records
            ids.update(rec["arg"][rec["kind"] == LOCK].tolist())
        assert len(ids) == 1
        assert "synthetic.global" in ts.layout.lock_names.values()

    def test_iteration_count_scales(self):
        small = SyntheticContention(scale=0.1).generate()
        big = SyntheticContention(scale=0.4).generate()
        assert big.total_records() > 3 * small.total_records()

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SyntheticContention(critical_instr=0)
        with pytest.raises(ValueError):
            SyntheticContention(think_instr=-1)

    def test_zero_think_time_allowed(self):
        ts = SyntheticContention(scale=0.05, think_instr=0).generate()
        validate_traceset(ts)


class TestContentionBehaviour:
    def test_total_contention_with_small_think(self):
        ts = SyntheticContention(scale=0.2, think_instr=10).generate()
        r = simulate(ts)
        # nearly every acquisition is contended; waiters near machine size
        assert r.lock_stats.avg_waiters_at_transfer > ts.n_procs * 0.5
        assert r.stall_pct_lock > 90
        assert r.avg_utilization < 0.35

    def test_contention_falls_with_think_time(self):
        busy = simulate(SyntheticContention(scale=0.2, think_instr=10).generate())
        idle = simulate(SyntheticContention(scale=0.2, think_instr=400).generate())
        assert (
            idle.lock_stats.avg_waiters_at_transfer
            < busy.lock_stats.avg_waiters_at_transfer
        )
        assert idle.avg_utilization > busy.avg_utilization

    def test_queuing_beats_ttas_dramatically(self):
        """The literature's result on the literature's benchmark: the
        sophisticated lock wins big under artificial contention --
        compare with the few percent on the real suite."""
        wl = SyntheticContention(scale=0.2, think_instr=40)
        ts = wl.generate()
        q = simulate(ts, lock_manager=get_lock_manager("queuing"))
        t = simulate(ts, lock_manager=get_lock_manager("ttas"))
        slow = (t.run_time - q.run_time) / q.run_time
        assert slow > 0.15  # >15%, an order beyond the real programs

    def test_serialization_bound(self):
        """With total contention the run-time approaches the serialized
        sum of critical sections (the lock is the whole program)."""
        wl = SyntheticContention(scale=0.2, critical_instr=30, think_instr=0)
        ts = wl.generate()
        r = simulate(ts)
        total_hold = r.lock_stats.hold_cycles_total
        assert total_hold > 0.6 * r.run_time
