"""The fast paths' acceptance gate: differential equality on the suite.

Every (program, lock scheme, consistency model) cell of the paper's
grid is run at default scale with the optimization knobs (``fast_path``,
``bus_fast_path``, ``segment_kernel``) on and off; the two serialized
results must agree on every field.  This is the tentpole guarantee --
an optimization may only ever be a *speed* change -- enforced on the
real workloads, not just the property suites' random traces.  A reduced
knob *cube* additionally checks every axis alone and in combination on
the cell with the strongest segment-kernel engagement, and a dedicated
quiet-workload cell covers the regime the contended suite barely
reaches (the kernel retiring nearly everything).

The full-grid cells are grouped per program (the traceset is generated
once and shared by its four cells) and marked ``repro`` like the other
full-scale shape tests.
"""

import pytest

from repro.machine.engine import HeapEngine
from repro.testing import (
    LOCK_SCHEMES,
    MODELS,
    SUITE_PROGRAMS,
    differential_check,
    run_cell,
)

_TS = {}


def _suite_trace(program):
    if program not in _TS:
        from repro.workloads import generate_trace

        _TS[program] = generate_trace(program, scale=1.0, seed=1991)
    return _TS[program]


@pytest.mark.repro
@pytest.mark.parametrize("program", SUITE_PROGRAMS)
def test_fast_path_byte_identical_at_default_scale(program):
    reports = differential_check(programs=(program,), scale=1.0, seed=1991)
    assert len(reports) == len(LOCK_SCHEMES) * len(MODELS)
    bad = [r for r in reports if not r.equal]
    if bad:
        detail = "\n".join(
            f"{r.label}:\n  " + "\n  ".join(r.diffs) for r in bad
        )
        pytest.fail(
            f"fast path diverged on {len(bad)} cell(s):\n{detail}", pytrace=False
        )
    # anti-vacuity: at default scale the fast path must actually engage
    for r in reports:
        assert r.fp_windows > 0, f"{r.label}: fast path never retired a window"


#: the three record-retirement axes alone and in combination, swept on
#: a full-scale suite cell; the full triple is part of the VARY_ALL
#: default the grid test above already sweeps, kept here so the cube is
#: complete
KNOB_CUBE = [
    ("fast_path",),
    ("bus_fast_path",),
    ("segment_kernel",),
    ("fast_path", "bus_fast_path"),
    ("fast_path", "segment_kernel"),
    ("bus_fast_path", "segment_kernel"),
    ("fast_path", "bus_fast_path", "segment_kernel"),
]

#: every non-empty subset of all four optimization axes (2^4 - 1),
#: including the spin-phase collapse kernel; swept on a reduced-scale
#: crafted contended cell where every axis demonstrably engages (the
#: suite workloads barely contend, so the spin axis would be vacuous
#: on them)
SPIN_KNOB_CUBE = [
    ("fast_path",),
    ("bus_fast_path",),
    ("segment_kernel",),
    ("spin_kernel",),
    ("fast_path", "bus_fast_path"),
    ("fast_path", "segment_kernel"),
    ("fast_path", "spin_kernel"),
    ("bus_fast_path", "segment_kernel"),
    ("bus_fast_path", "spin_kernel"),
    ("segment_kernel", "spin_kernel"),
    ("fast_path", "bus_fast_path", "segment_kernel"),
    ("fast_path", "bus_fast_path", "spin_kernel"),
    ("fast_path", "segment_kernel", "spin_kernel"),
    ("bus_fast_path", "segment_kernel", "spin_kernel"),
    ("fast_path", "bus_fast_path", "segment_kernel", "spin_kernel"),
]


@pytest.mark.repro
@pytest.mark.parametrize("vary", KNOB_CUBE, ids="+".join)
def test_optimization_knob_cube_byte_identical(vary):
    """Each optimization knob is byte-neutral *independently*, not just
    as part of the fully-optimized configuration: toggling any subset of
    axes (the untoggled ones stay at their defaults on both sides) must
    not change a single serialized field.  Run on topopt, the suite cell
    with the strongest segment-kernel engagement."""
    report = run_cell(
        _suite_trace("topopt"),
        lock_scheme="queuing",
        consistency="sc",
        program="topopt",
        vary=vary,
    )
    assert report.equal, f"{'+'.join(vary)}:\n  " + "\n  ".join(report.diffs)
    if "segment_kernel" in vary:
        # anti-vacuity: the axis under test must actually engage
        assert report.kernel_segments > 0, "segment kernel never collapsed"


def _contended_cube_trace():
    """Four processors hammering one shared lock, each critical section
    a private hit loop: all four optimization axes engage (private
    windows in the hot loops, quiet segments and spin phases at the
    lock-wait episodes, bus fast path on the hand-offs)."""
    from repro.trace.builder import TraceBuilder
    from repro.trace.layout import AddressLayout
    from repro.trace.records import TraceSet

    layout = AddressLayout(n_procs=4)
    lock = layout.alloc_lock()
    traces = []
    for p in range(4):
        b = TraceBuilder(p, layout, program="spin-cube")
        code = layout.alloc_code(64)
        base = layout.alloc_private(p, 8 * 16)
        for j in range(8):  # warm the working set: later reads all hit
            b.read(base + 16 * j)
        for _ in range(10):
            b.lock(0, lock)
            for j in range(300):
                b.block(2, 2, code)
                b.read(base + 16 * (j % 8))
            b.unlock(0, lock)
        traces.append(b.finish())
    return TraceSet(traces, layout, program="spin-cube")


@pytest.mark.parametrize("vary", SPIN_KNOB_CUBE, ids="+".join)
def test_spin_knob_cube_byte_identical(vary):
    """The full 2^4 optimization cube on a contended cell: any subset of
    the four axes -- window fast path, bus fast path, segment kernel,
    spin kernel -- toggled together (untouched axes at their defaults on
    both sides) must not change a single serialized field, and every
    axis under test must actually engage on the fast side."""
    from repro.machine.config import MachineConfig

    report = run_cell(
        _contended_cube_trace(),
        lock_scheme="ticket",
        consistency="sc",
        program="spin-cube",
        config=MachineConfig(n_procs=4),
        vary=vary,
    )
    assert report.equal, f"{'+'.join(vary)}:\n  " + "\n  ".join(report.diffs)
    # anti-vacuity: the fast side always runs with every knob at its
    # default-on setting, so all four mechanisms must have fired
    assert report.fp_windows > 0, "window fast path never retired"
    assert report.kernel_segments > 0, "kernel never collapsed a segment"
    assert report.spin_segments > 0, "spin kernel never collapsed a phase"


def test_segment_kernel_axis_on_quiet_workload():
    """The contended suite exercises the kernel only at its quiet edges;
    this cell is the opposite regime -- an uncontended multi-processor
    private phase where the kernel retires most of the trace -- checked
    byte-identical against the reference interpreter under both models."""
    from repro.machine.config import MachineConfig

    from .conftest import make_traceset

    def prog(b, layout):
        code = layout.alloc_code(1024)
        data = layout.alloc_private(b.proc, 1024)
        for _ in range(200):
            b.block(8, 8, code)
            for j in range(8):
                b.read(data + 64 * j, reps=4)
                b.write(data + 64 * j, reps=2)

    ts = make_traceset([prog] * 4, program="quiet")
    total = sum(len(t.records) for t in ts)
    for model in MODELS:
        report = run_cell(
            ts,
            consistency=model,
            program="quiet",
            config=MachineConfig(n_procs=4),
            vary=("segment_kernel",),
        )
        assert report.equal, f"{model}:\n  " + "\n  ".join(report.diffs)
        assert report.kernel_records > 0.5 * total, (
            f"{model}: kernel retired only "
            f"{report.kernel_records}/{total} records"
        )


def test_bucketed_engine_matches_heap_engine():
    """The production event queue against its executable specification:
    a whole simulation driven through HeapEngine must serialize
    identically to one driven through the default bucketed Engine."""
    import json

    from repro.consistency import SEQUENTIAL, WEAK
    from repro.machine.config import MachineConfig
    from repro.machine.system import System
    from repro.runner.serialize import result_to_dict
    from repro.sync import QueuingLockManager
    from repro.workloads import generate_trace

    ts = generate_trace("grav", scale=0.25, seed=1991)

    def run(engine_factory, model):
        system = System(
            ts,
            MachineConfig(n_procs=ts.n_procs),
            QueuingLockManager(),
            model,
            engine_factory=engine_factory,
        )
        return json.loads(json.dumps(result_to_dict(system.run()), sort_keys=True))

    for model in (SEQUENTIAL, WEAK):
        assert run(None, model) == run(HeapEngine, model)

    # and the differential harness accepts an engine_factory, so the
    # fast path can be cross-checked under either queue implementation
    report = run_cell(
        ts, lock_scheme="queuing", consistency="sc", engine_factory=HeapEngine
    )
    assert report.equal, "\n".join(report.diffs)
