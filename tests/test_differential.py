"""The fast path's acceptance gate: differential equality on the suite.

Every (program, lock scheme, consistency model) cell of the paper's
grid is run at default scale with ``fast_path`` on and off; the two
serialized results must agree on every field.  This is the tentpole
guarantee -- the fast path may only ever be a *speed* change -- enforced
on the real workloads, not just the property suite's random traces.

The cells are grouped per program (the traceset is generated once and
shared by its four cells) and marked ``repro`` like the other full-scale
shape tests.
"""

import pytest

from repro.machine.engine import HeapEngine
from repro.testing import (
    LOCK_SCHEMES,
    MODELS,
    SUITE_PROGRAMS,
    differential_check,
    run_cell,
)


@pytest.mark.repro
@pytest.mark.parametrize("program", SUITE_PROGRAMS)
def test_fast_path_byte_identical_at_default_scale(program):
    reports = differential_check(programs=(program,), scale=1.0, seed=1991)
    assert len(reports) == len(LOCK_SCHEMES) * len(MODELS)
    bad = [r for r in reports if not r.equal]
    if bad:
        detail = "\n".join(
            f"{r.label}:\n  " + "\n  ".join(r.diffs) for r in bad
        )
        pytest.fail(
            f"fast path diverged on {len(bad)} cell(s):\n{detail}", pytrace=False
        )
    # anti-vacuity: at default scale the fast path must actually engage
    for r in reports:
        assert r.fp_windows > 0, f"{r.label}: fast path never retired a window"


def test_bucketed_engine_matches_heap_engine():
    """The production event queue against its executable specification:
    a whole simulation driven through HeapEngine must serialize
    identically to one driven through the default bucketed Engine."""
    import json

    from repro.consistency import SEQUENTIAL, WEAK
    from repro.machine.config import MachineConfig
    from repro.machine.system import System
    from repro.runner.serialize import result_to_dict
    from repro.sync import QueuingLockManager
    from repro.workloads import generate_trace

    ts = generate_trace("grav", scale=0.25, seed=1991)

    def run(engine_factory, model):
        system = System(
            ts,
            MachineConfig(n_procs=ts.n_procs),
            QueuingLockManager(),
            model,
            engine_factory=engine_factory,
        )
        return json.loads(json.dumps(result_to_dict(system.run()), sort_keys=True))

    for model in (SEQUENTIAL, WEAK):
        assert run(None, model) == run(HeapEngine, model)

    # and the differential harness accepts an engine_factory, so the
    # fast path can be cross-checked under either queue implementation
    report = run_cell(
        ts, lock_scheme="queuing", consistency="sc", engine_factory=HeapEngine
    )
    assert report.equal, "\n".join(report.diffs)
