"""Backpressure and priority lanes (PR 10 tentpole): the lane
semaphore's ordering guarantees, bounded admission (``Overloaded``),
and the HTTP surface -- 503 + ``Retry-After`` -- end to end."""

import asyncio
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.runner import JobSpec, ResultCache
from repro.service import (
    InProcessTransport,
    Overloaded,
    Scheduler,
    ServiceClient,
    ServiceServer,
)
from repro.service.scheduler import _LaneSemaphore

pytestmark = pytest.mark.service

GOOD = JobSpec(program="fullconn", scale=0.05)


def _specs(n: int) -> list[JobSpec]:
    """n distinct cheap specs (distinct seeds -> distinct cache keys)."""
    return [JobSpec(program="fullconn", scale=0.05, seed=2000 + i) for i in range(n)]


class TestLaneSemaphore:
    def test_high_lane_overtakes_normal(self):
        async def scenario():
            sema = _LaneSemaphore(1)
            order = []

            async def use(tag: str, high: bool):
                await sema.acquire(high=high)
                order.append(tag)
                sema.release()

            await sema.acquire()  # occupy the only slot
            tasks = [asyncio.create_task(use("normal", False))]
            await asyncio.sleep(0)  # normal waiter queues first
            tasks.append(asyncio.create_task(use("high", True)))
            await asyncio.sleep(0)
            sema.release()
            await asyncio.gather(*tasks)
            return order

        assert asyncio.run(scenario()) == ["high", "normal"]

    def test_fifo_within_a_lane(self):
        async def scenario():
            sema = _LaneSemaphore(1)
            order = []

            async def use(tag: str):
                await sema.acquire()
                order.append(tag)
                sema.release()

            await sema.acquire()
            tasks = []
            for tag in ("a", "b", "c"):
                tasks.append(asyncio.create_task(use(tag)))
                await asyncio.sleep(0)
            sema.release()
            await asyncio.gather(*tasks)
            return order

        assert asyncio.run(scenario()) == ["a", "b", "c"]

    def test_cancelled_waiter_does_not_leak_the_slot(self):
        async def scenario():
            sema = _LaneSemaphore(1)
            await sema.acquire()
            waiter = asyncio.create_task(sema.acquire())
            await asyncio.sleep(0)
            waiter.cancel()
            with pytest.raises(asyncio.CancelledError):
                await waiter
            sema.release()
            # the slot must be reusable immediately
            await asyncio.wait_for(sema.acquire(), timeout=1)
            return True

        assert asyncio.run(scenario())


class _GatedWorker:
    """Transport handler that blocks each run until released."""

    def __init__(self) -> None:
        self.gate: asyncio.Event | None = None
        self.started: list[str] = []

    async def handle(self, request: dict) -> dict:
        if self.gate is None:
            self.gate = asyncio.Event()
        specs = request.get("specs") or [request["spec"]]
        for s in specs:
            self.started.append(f"{s['program']}{s['seed']}")
        await self.gate.wait()
        failure = {
            "ok": False,
            "kind": "error",
            "message": "gated test worker never computes",
            "traceback": "",
            "elapsed_s": 0.0,
        }
        if "specs" in request:  # run_shard framing
            return {
                "ok": True,
                "worker": "gated",
                "payloads": [dict(failure) for _ in specs],
            }
        return failure


class TestBoundedAdmission:
    def test_overloaded_raised_at_the_queue_bound(self):
        worker = _GatedWorker()
        scheduler = Scheduler(
            jobs=1,
            cache=None,
            trace_cache=False,
            transports=[InProcessTransport(worker.handle)],
            max_queue=1,
        )
        a, b, c = _specs(3)

        async def scenario():
            t1 = asyncio.create_task(scheduler.submit(a))  # takes the slot
            await asyncio.sleep(0.01)
            t2 = asyncio.create_task(scheduler.submit(b))  # queues (depth 1)
            await asyncio.sleep(0.01)
            with pytest.raises(Overloaded) as err:
                await scheduler.submit(c)  # would exceed max_queue=1
            worker.gate.set()
            await asyncio.gather(t1, t2)
            return err.value

        exc = asyncio.run(scenario())
        assert exc.retry_after >= 1.0
        assert "max_queue=1" in str(exc)
        assert scheduler.metrics.shed == 1

    def test_grid_admission_counts_the_whole_remainder(self):
        # a grid whose cold remainder alone exceeds the bound is shed
        # up front, before any shard is dispatched
        worker = _GatedWorker()
        scheduler = Scheduler(
            jobs=1,
            cache=None,
            trace_cache=False,
            transports=[InProcessTransport(worker.handle)],
            max_queue=2,
        )

        async def scenario():
            with pytest.raises(Overloaded):
                await scheduler.submit_grid(_specs(5))

        asyncio.run(scenario())
        assert scheduler.metrics.shed == 1
        assert scheduler.metrics.shards_dispatched == 0
        assert not scheduler._inflight  # nothing stranded

    def test_hits_are_never_shed(self, tmp_path):
        from repro.runner.executor import _execute
        from repro.runner.serialize import result_from_dict

        cache = ResultCache(tmp_path / "cache")
        payload = _execute(GOOD, None, None)
        cache.put(GOOD, result_from_dict(payload["result"]))
        scheduler = Scheduler(jobs=1, cache=cache, trace_cache=False, max_queue=1)
        # queue_depth 0 < bound, but force the edge: a warm key must be
        # served even when the queue is saturated, because hits never
        # reach admission
        scheduler.metrics.queue_depth = 5
        out = asyncio.run(scheduler.submit(GOOD))
        assert out.status == "hit"
        assert scheduler.metrics.shed == 0

    def test_priority_high_jumps_the_backlog(self):
        worker = _GatedWorker()
        scheduler = Scheduler(
            jobs=1,
            cache=None,
            trace_cache=False,
            transports=[InProcessTransport(worker.handle)],
        )
        a, b, c = _specs(3)

        async def scenario():
            t1 = asyncio.create_task(scheduler.submit(a))
            await asyncio.sleep(0.01)  # a reaches the worker and blocks
            t2 = asyncio.create_task(scheduler.submit(b, priority="normal"))
            await asyncio.sleep(0.01)
            t3 = asyncio.create_task(scheduler.submit(c, priority="high"))
            await asyncio.sleep(0.01)
            worker.gate.set()  # release everything
            await asyncio.gather(t1, t2, t3)
            return worker.started

        started = asyncio.run(scenario())
        # c (high) must start before b (normal) despite queuing later
        assert started.index(f"fullconn{c.seed}") < started.index(f"fullconn{b.seed}")
        assert scheduler.metrics.priority_high == 1


@pytest.fixture
def tiny_service(tmp_path):
    """A live HTTP service with max_queue=2 over a gated worker: two
    cold single-cell submits fill the bound, the third is shed."""
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    worker = _GatedWorker()
    scheduler = Scheduler(
        jobs=1,
        cache=ResultCache(tmp_path / "cache"),
        trace_cache=False,
        transports=[InProcessTransport(worker.handle)],
        max_queue=2,
    )
    server = ServiceServer(scheduler)
    asyncio.run_coroutine_threadsafe(server.start(), loop).result(timeout=30)
    try:
        yield server, worker, loop
    finally:
        if worker.gate is not None:
            loop.call_soon_threadsafe(worker.gate.set)
        asyncio.run_coroutine_threadsafe(server.close(), loop).result(timeout=30)
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)
        loop.close()


class TestHttp503:
    def test_shed_request_gets_503_with_retry_after(self, tiny_service):
        server, worker, loop = tiny_service
        a, b, c = _specs(3)

        def submit(spec):
            body = json.dumps({"specs": [spec.to_dict()]}).encode()
            req = urllib.request.Request(
                server.url + "/submit",
                data=body,
                headers={"Content-Type": "application/json"},
            )
            return urllib.request.urlopen(req, timeout=60)

        # occupy the slot and the one queue place from the test thread
        t1 = threading.Thread(target=lambda: submit(a), daemon=True)
        t1.start()
        import time

        for _ in range(200):
            if worker.started:
                break
            time.sleep(0.01)
        t2 = threading.Thread(target=lambda: submit(b), daemon=True)
        t2.start()
        for _ in range(200):
            if server.scheduler.metrics.queue_depth >= 2:
                break
            time.sleep(0.01)

        with pytest.raises(urllib.error.HTTPError) as err:
            submit(c)
        assert err.value.code == 503
        retry_after = err.value.headers.get("Retry-After")
        assert retry_after is not None and int(retry_after) >= 1
        payload = json.loads(err.value.read())
        assert "shedding load" in payload["error"]
        assert payload["retry_after"] >= 1
        loop.call_soon_threadsafe(worker.gate.set)
        t1.join(timeout=30)
        t2.join(timeout=30)

    def test_client_priority_field_reaches_the_scheduler(self, tiny_service):
        server, worker, loop = tiny_service
        (a,) = _specs(1)
        client = ServiceClient(server.url, timeout=60)
        done = threading.Event()

        def submit():
            client.submit(specs=[a], priority="high")
            done.set()

        threading.Thread(target=submit, daemon=True).start()
        import time

        for _ in range(200):
            if worker.started:
                break
            time.sleep(0.01)
        loop.call_soon_threadsafe(worker.gate.set)
        assert done.wait(timeout=30)
        assert server.scheduler.metrics.priority_high == 1

    def test_bad_priority_is_a_400(self, tiny_service):
        server, _worker, _loop = tiny_service
        (a,) = _specs(1)
        body = json.dumps({"specs": [a.to_dict()], "priority": "urgent"}).encode()
        req = urllib.request.Request(
            server.url + "/submit",
            data=body,
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as err:
            urllib.request.urlopen(req, timeout=30)
        assert err.value.code == 400
